"""E18 — WAN relay routes vs. the Theorem 5 single-link abstraction.

The paper models the monitored connection as one end-to-end link
(§3.1).  This experiment relays heartbeats hop by hop across a
four-site WAN (``nyc — lon — fra — sgp`` with a slow ``nyc — fra``
detour) via :class:`repro.net.wan.RoutedWanLink` and asks two
questions:

1. **Does the reduction hold?**  Fault-free, a multi-hop route composes
   to a single ``(delay, loss)`` pair by exact moment additivity and
   multiplicative loss; Theorem 5 on that composite must match the
   relayed simulation.  Table 1 gates pooled ``E(T_MR)``/``E(T_M)``/
   ``P_A`` against the closed-form prediction (the E14 t-interval
   check) and every crash detection against the sure bound ``δ + η``
   — per route, at one, two and three hops.
2. **How far does WAN reality drift?**  Table 2 layers the faults no
   single-link model expresses — correlated congestion shocks, bursty
   backbone loss, scripted partition/heal cycles with mid-flight
   re-routing, and full site isolation — and quantifies the *relay
   distortion*: signed relative error of the observed QoS against the
   fault-free composite prediction, alongside the route-flip/re-route/
   no-route counters.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.experiments.common import ExperimentTable, steady_state_warmup
from repro.core.nfd_s import NFDS
from repro.metrics.qos import pool_accuracy
from repro.net.delays import ExponentialDelay
from repro.net.wan import (
    RoutedWanLink,
    WanNetwork,
    WanSchedule,
    WanTopology,
    detection_within_bound,
    periodic_partitions,
    predict_route,
    prediction_errors,
    within_theorem5_band,
)
from repro.sim.parallel import (
    run_crash_runs_parallel,
    run_failure_free_parallel,
)
from repro.sim.runner import SimulationConfig, run_failure_free

__all__ = ["WanSettings", "build_topology", "route_config", "run_wan"]


class WanSettings:
    """Shared parameters of both E18 tables.

    ``delta = 1.0`` keeps the timeout an order of magnitude above the
    three-hop mean delay (~0.13), so fault-free mistakes are dominated
    by message loss — the regime where the composite prediction is
    sharpest — while the ×8 congestion shock pushes delays across the
    deadline and the distortion becomes visible.
    """

    def __init__(
        self,
        eta: float = 1.0,
        delta: float = 1.0,
        horizon: float = 3000.0,
        n_ff_runs: int = 5,
        n_crash_runs: int = 40,
        ci_level: float = 0.99,
        seed: int = 0xE18,
    ) -> None:
        self.eta = eta
        self.delta = delta
        self.horizon = horizon
        self.n_ff_runs = n_ff_runs
        self.n_crash_runs = n_crash_runs
        self.ci_level = ci_level
        self.seed = seed
        self.warmup = steady_state_warmup(eta, delta=delta)

    @property
    def detection_bound(self) -> float:
        return self.delta + self.eta

    def detector_factory(self):
        return lambda: NFDS(eta=self.eta, delta=self.delta)


def build_topology(
    bursty: bool = False, congestion: bool = False
) -> WanTopology:
    """The E18 four-site WAN.

    ``bursty`` turns the ``lon—fra`` backbone into a Gilbert–Elliott
    channel at the *same average* loss (burst length 8); ``congestion``
    declares a shared ×8 latent delay shock over the two transatlantic
    hops.  Both default off so the base topology satisfies the i.i.d.
    assumptions Theorem 5 composes under.
    """
    t = WanTopology("e18")
    for site in ("nyc", "lon", "fra", "sgp"):
        t.add_site(site)
    t.add_link("nyc", "lon", ExponentialDelay(0.03), loss=0.04)
    t.add_link(
        "lon",
        "fra",
        ExponentialDelay(0.01),
        loss=0.02,
        burst_length=8.0 if bursty else None,
    )
    t.add_link("nyc", "fra", ExponentialDelay(0.08), loss=0.01)
    t.add_link("fra", "sgp", ExponentialDelay(0.09), loss=0.03)
    if congestion:
        t.add_congestion(
            [("nyc", "lon"), ("lon", "fra")],
            rate=1.0 / 200.0,
            mean_duration=30.0,
            factor=8.0,
        )
    return t


def route_config(
    s: WanSettings,
    topology: WanTopology,
    target: str,
    schedule: Optional[WanSchedule] = None,
    links_out: Optional[list] = None,
) -> SimulationConfig:
    """A runner config whose link is a relayed WAN route from ``nyc``.

    The network horizon leaves headroom past the run horizon so crash
    runs (which simulate past the crash window) never outrun the
    pre-sampled congestion field.
    """
    composite, loss, _ = topology.compose_route("nyc", target)
    link_horizon = 2.0 * s.horizon + 100.0

    def link_factory(rng: np.random.Generator) -> RoutedWanLink:
        net = WanNetwork(topology, rng, horizon=link_horizon, schedule=schedule)
        link = RoutedWanLink(net, "nyc", target)
        if links_out is not None:
            links_out.append(link)
        return link

    return SimulationConfig(
        eta=s.eta,
        delay=composite,
        loss_probability=loss,
        horizon=s.horizon,
        warmup=s.warmup,
        seed=s.seed,
        link_factory=link_factory,
    )


def _fmt_pct(x: float) -> str:
    return f"{100.0 * x:+.1f}%"


def theorem5_table(
    s: Optional[WanSettings] = None, jobs: int = 1
) -> ExperimentTable:
    """Table 1: the composite prediction vs. the relayed simulation,
    fault-free, per route length."""
    s = s if s is not None else WanSettings()
    table = ExperimentTable(
        title=(
            f"E18a: Theorem 5 over relayed WAN routes, fault-free "
            f"(NFD-S eta={s.eta:g}, delta={s.delta:g}, "
            f"{s.n_ff_runs} runs x {s.horizon:g}s, "
            f"{int(100 * s.ci_level)}% CIs)"
        ),
        columns=[
            "route",
            "hops",
            "p_L",
            "E(Tmr) thm5",
            "E(Tmr) sim",
            "E(Tm) thm5",
            "E(Tm) sim",
            "P_A thm5",
            "P_A sim",
            "in band",
            "max T_D",
            "T_D<=bound",
        ],
    )
    topology = build_topology()
    for target in ("lon", "fra", "sgp"):
        pred = predict_route(
            topology, "nyc", target, eta=s.eta, delta=s.delta
        )
        config = route_config(s, topology, target, schedule=None)
        results = run_failure_free_parallel(
            s.detector_factory(), config, s.n_ff_runs, jobs=jobs
        )
        pooled = pool_accuracy([r.accuracy for r in results])
        crashes = run_crash_runs_parallel(
            s.detector_factory(),
            config,
            s.n_crash_runs,
            jobs=jobs,
            settle_time=10.0 * s.detection_bound,
        )
        in_band = within_theorem5_band(
            pred, pooled.tmr_samples, pooled.tm_samples, level=s.ci_level
        )
        bound_ok = detection_within_bound(
            pred, crashes.detection_times
        )
        p = pred.prediction
        obs_tmr = float(np.mean(pooled.tmr_samples))
        obs_tm = float(np.mean(pooled.tm_samples))
        table.add_row(
            "->".join(pred.path),
            len(pred.path) - 1,
            f"{pred.loss:.4f}",
            f"{p.e_tmr:.1f}",
            f"{obs_tmr:.1f}",
            f"{p.e_tm:.3f}",
            f"{obs_tm:.3f}",
            f"{p.query_accuracy:.5f}",
            f"{1.0 - obs_tm / obs_tmr:.5f}",
            "yes" if in_band else "NO",
            f"{crashes.max_detection_time:.3f}",
            "yes" if bound_ok else "NO",
        )
    table.add_note(
        "Composition: exact additive moments, loss = 1 - prod(1-p_i); "
        "the relay walked each hop, the prediction never saw the hops."
    )
    table.add_note(
        f"'in band': {int(100 * s.ci_level)}% t-intervals on pooled "
        f"T_MR/T_M contain the closed-form means and P_A lies in the "
        f"combined interval; 'T_D<=bound': every crash detected within "
        f"delta+eta = {s.detection_bound:g}."
    )
    return table


def _scenarios(
    s: WanSettings,
) -> List[Tuple[str, WanTopology, Optional[WanSchedule]]]:
    base = build_topology()
    congested = build_topology(congestion=True)
    bursty = build_topology(bursty=True)

    def schedule_on(topology, pairs, duration):
        first = s.warmup + 150.0
        period = 400.0
        count = max(1, int((s.horizon - first) / period))
        return WanSchedule(
            topology,
            {
                pair: periodic_partitions(first, period, duration, count)
                for pair in pairs
            },
            name="e18-partitions",
        )

    partitioned = build_topology()
    isolated = build_topology()
    return [
        ("fault-free", base, None),
        ("congestion x8", congested, None),
        ("bursty backbone", bursty, None),
        (
            "partitions",
            partitioned,
            schedule_on(partitioned, [("nyc", "lon")], 25.0),
        ),
        (
            "site isolated",
            isolated,
            schedule_on(
                isolated, [("nyc", "lon"), ("nyc", "fra")], 10.0
            ),
        ),
    ]


def distortion_table(
    s: Optional[WanSettings] = None, jobs: int = 1
) -> ExperimentTable:
    """Table 2: relay distortion of the monitored ``nyc -> sgp`` route
    under WAN faults, against the fault-free composite prediction."""
    s = s if s is not None else WanSettings()
    pred = predict_route(
        build_topology(), "nyc", "sgp", eta=s.eta, delta=s.delta
    )
    table = ExperimentTable(
        title=(
            f"E18b: relay distortion on nyc->sgp under WAN faults "
            f"(vs. fault-free composite prediction; NFD-S "
            f"eta={s.eta:g}, delta={s.delta:g})"
        ),
        columns=[
            "scenario",
            "E(Tmr) sim",
            "dE(Tmr)",
            "E(Tm) sim",
            "dE(Tm)",
            "dP_A",
            "loss rate",
            "flips/run",
            "reroutes/run",
            "no-route/run",
        ],
    )
    for name, topology, schedule in _scenarios(s):
        config = route_config(s, topology, "sgp", schedule)
        results = run_failure_free_parallel(
            s.detector_factory(), config, s.n_ff_runs, jobs=jobs
        )
        pooled = pool_accuracy([r.accuracy for r in results])
        errors = prediction_errors(
            pred, pooled.tmr_samples, pooled.tm_samples
        )
        # Counters cannot cross the fork boundary, so one dedicated
        # serial run (the next unused index — its own stream, same law)
        # reports the per-run relay counters.
        links: list = []
        counter_config = route_config(s, topology, "sgp", schedule, links_out=links)
        run_failure_free(
            s.detector_factory(), counter_config, run_index=s.n_ff_runs
        )
        (probe,) = links
        loss_rate = float(
            np.mean([r.empirical_loss_rate for r in results])
        )
        table.add_row(
            name,
            f"{float(np.mean(pooled.tmr_samples)):.1f}",
            _fmt_pct(errors["e_tmr"]),
            f"{float(np.mean(pooled.tm_samples)):.3f}",
            _fmt_pct(errors["e_tm"]),
            f"{errors['query_accuracy']:+.5f}",
            f"{loss_rate:.4f}",
            f"{probe.route_flips}",
            f"{probe.reroutes}",
            f"{probe.no_route_drops}",
        )
    table.add_note(
        "dX = (observed - predicted)/predicted against the fault-free "
        "composite; dP_A is an absolute difference.  Counters are from "
        "one dedicated serial run of the same horizon."
    )
    table.add_note(
        "'site isolated' cuts both nyc uplinks at once: no-route drops "
        "appear and the detector's mistake durations stretch to the "
        "isolation windows."
    )
    return table


def run_wan(
    full: bool = False, jobs: int = 1
) -> List[ExperimentTable]:
    """E18 driver: both tables, quick scale by default."""
    s = (
        WanSettings(horizon=8000.0, n_ff_runs=8, n_crash_runs=150)
        if full
        else WanSettings()
    )
    return [theorem5_table(s, jobs=jobs), distortion_table(s, jobs=jobs)]
