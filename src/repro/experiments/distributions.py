"""E9 — delay-distribution sensitivity and Section 5 bound conservatism.

The NFD-S analysis (Theorem 5) holds for *any* delay distribution; the
Section 5 configurator only sees ``(E(D), V(D))``.  Two questions:

1. How much does the actual distribution *shape* (at matched mean and
   variance) move the accuracy of one fixed NFD-S configuration?
   Answer: a lot — the tail ``P(D > δ − jη)`` is what enters ``u(0)``,
   and tails differ wildly at matched second moments.  This is exactly
   why the distribution-free procedure must be conservative.
2. How conservative is the Theorem 9 lower bound ``η/β`` on ``E(T_MR)``
   compared to the per-distribution exact value?

Each row: one distribution family at mean 0.02 / std 0.02 (matching the
paper's exponential), analytic ``E(T_MR)``/``E(T_M)`` via Theorem 5, a
simulation check, and the distribution-free Theorem 9 bounds.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.chebyshev import nfds_accuracy_bounds
from repro.analysis.nfds_theory import NFDSAnalysis
from repro.experiments.common import FIG12_SETTINGS, ExperimentTable, Fig12Settings
from repro.net.delays import (
    DelayDistribution,
    ExponentialDelay,
    GammaDelay,
    LogNormalDelay,
    ParetoDelay,
    UniformDelay,
)
from repro.sim.fastsim import simulate_nfds_fast

__all__ = ["matched_distributions", "run_distributions"]


def matched_distributions(
    mean: float, std: float
) -> List[Tuple[str, DelayDistribution]]:
    """Distribution families matched to the given mean and std.

    Note that a gamma matched to ``std == mean`` *is* the exponential
    (shape 1), and the uniform can only match when ``mean ≥ std·√3`` —
    both are included exactly when they are distinct/feasible.
    """
    out: List[Tuple[str, DelayDistribution]] = [
        ("gamma", GammaDelay.from_mean_std(mean, std)),
        ("lognormal", LogNormalDelay.from_mean_std(mean, std)),
        ("pareto", ParetoDelay.from_mean_std(mean, std)),
    ]
    if abs(std - mean) > 1e-12 * mean:
        out.insert(0, ("exponential*", ExponentialDelay(mean)))
    else:
        # shape-1 gamma already *is* the exponential; label it so.
        out[0] = ("exponential", ExponentialDelay(mean))
    try:
        out.append(("uniform", UniformDelay.from_mean_std(mean, std)))
    except Exception:
        pass  # uniform needs mean >= std*sqrt(3); skip when unmatched
    return out


def run_distributions(
    tdu: float = 2.5,
    settings: Fig12Settings = FIG12_SETTINGS,
    mean: float = 0.1,
    std: float = 0.3,
    loss_probability: float = 0.001,
    target_mistakes: int = 1000,
    max_heartbeats: int = 20_000_000,
    seed: int = 909,
) -> ExperimentTable:
    """NFD-S accuracy across matched-moment delay distributions.

    Defaults deliberately differ from the Section 7 settings: at the
    paper's tiny delays (E(D) = 0.02) the ``p_L`` term dominates every
    ``p_j`` factor and all shapes coincide — itself worth knowing, but
    uninformative as an ablation.  With heavier delays (mean 0.1,
    std 0.3) and rarer losses (0.001), the tail ``P(D > δ − jη)`` is the
    binding term and the families separate by an order of magnitude at
    identical first and second moments — the quantitative case for the
    conservatism of the Section 5 distribution-free procedure.
    """
    eta = settings.eta
    p_l = loss_probability
    sd = std
    delta = tdu - eta

    bounds = nfds_accuracy_bounds(
        eta=eta,
        delta=delta,
        loss_probability=p_l,
        mean_delay=mean,
        var_delay=sd * sd,
    )

    table = ExperimentTable(
        title=(
            f"Delay-distribution sensitivity of NFD-S at "
            f"eta={eta}, delta={delta:g} (all with E(D)={mean}, sd={sd})"
        ),
        columns=[
            "distribution",
            "E(T_MR) exact",
            "E(T_MR) sim",
            "E(T_M) exact",
            "P_A exact",
        ],
    )
    for name, dist in matched_distributions(mean, sd):
        analysis = NFDSAnalysis(eta, delta, p_l, dist)
        sim = simulate_nfds_fast(
            eta,
            delta,
            p_l,
            dist,
            seed=seed,
            target_mistakes=target_mistakes,
            max_heartbeats=max_heartbeats,
        )
        table.add_row(
            name,
            analysis.e_tmr(),
            sim.e_tmr,
            analysis.e_tm(),
            analysis.query_accuracy(),
        )
    table.add_note(
        f"Theorem 9 distribution-free bounds at these moments: "
        f"E(T_MR) >= {bounds.e_tmr_lower:.4g}, E(T_M) <= {bounds.e_tm_upper:.4g}"
    )
    table.add_note(
        "every per-distribution exact value must respect the bounds; the "
        "gap is the price of not knowing the distribution (Section 5)"
    )
    return table
