"""E11 — the φ-accrual descendant vs the paper's NFD-E.

The φ-accrual detector (Hayashibara et al. 2004 — the design behind
Akka's and Cassandra's failure detectors) descends directly from this
paper's QoS framework.  This experiment runs both on the Section 7
workload at several thresholds Φ and reports the paper's primary
metrics, measured with the event-driven simulator (φ-accrual's
data-dependent timers do not vectorize).

The instructive outcome: φ-accrual spans a *family* of operating points
(one per Φ) on the detection-time/accuracy trade-off, while NFD-E with a
configured (η, α) hits a *contracted* point — detection time bounded by
construction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.jacobson import JacobsonFD
from repro.core.nfd_e import NFDE
from repro.core.phi_accrual import PhiAccrualFD
from repro.experiments.common import FIG12_SETTINGS, ExperimentTable, Fig12Settings
from repro.sim.runner import SimulationConfig, run_crash_runs, run_failure_free

__all__ = ["run_phi_comparison"]


def run_phi_comparison(
    tdu: float = 2.0,
    thresholds: Optional[Sequence[float]] = None,
    settings: Fig12Settings = FIG12_SETTINGS,
    horizon: float = 30_000.0,
    n_crash_runs: int = 100,
    seed: int = 1111,
) -> ExperimentTable:
    """φ-accrual (several Φ) vs NFD-E on the Section 7 workload."""
    if thresholds is None:
        thresholds = [1.0, 2.0, 4.0, 8.0]
    eta = settings.eta
    alpha = tdu - settings.mean_delay - eta

    config = SimulationConfig(
        eta=eta,
        delay=settings.delay,
        loss_probability=settings.loss_probability,
        horizon=horizon,
        warmup=50.0,
        seed=seed,
    )
    crash_config = SimulationConfig(
        eta=eta,
        delay=settings.delay,
        loss_probability=settings.loss_probability,
        horizon=100.0,
        seed=seed + 1,
    )

    table = ExperimentTable(
        title=(
            f"phi-accrual vs NFD-E on the Section 7 workload "
            f"(eta={eta}, p_L={settings.loss_probability}, horizon={horizon:g})"
        ),
        columns=[
            "detector",
            "E(T_MR)",
            "E(T_M)",
            "P_A",
            "mean T_D",
            "max T_D",
        ],
    )

    cases = [
        (
            f"NFD-E (alpha={alpha:g})",
            lambda: NFDE(eta=eta, alpha=alpha, window=settings.nfde_window),
        )
    ]
    for phi in thresholds:
        cases.append(
            (
                f"phi-accrual (phi={phi:g})",
                lambda phi=phi: PhiAccrualFD(
                    threshold=phi, window=200, bootstrap_interval=eta
                ),
            )
        )
    cases.append(
        (
            "jacobson (k=4)",
            lambda: JacobsonFD(k=4.0, bootstrap_interval=eta),
        )
    )

    for name, factory in cases:
        acc = run_failure_free(factory, config).accuracy
        crash = run_crash_runs(
            factory, crash_config, n_runs=n_crash_runs, settle_time=50.0
        )
        table.add_row(
            name,
            acc.e_tmr,
            acc.e_tm,
            acc.query_accuracy,
            crash.mean_detection_time,
            crash.max_detection_time,
        )
    table.add_note(
        "NFD-E's max T_D is bounded by construction (alpha + eta + E(D)); "
        "phi-accrual trades detection speed for accuracy via the "
        "threshold with no hard bound"
    )
    return table
