"""E16 (extension) — hierarchical vs. flat monitoring at matched budget.

The ROADMAP's scale item: flat monitoring funnels every heartbeat
through one monitor; a two-level federation lets leaves absorb the
heartbeat load and sends the root only compact shard digests over the
gossip plane.  This experiment prices that architecture in the paper's
own currency: the root-level output traces are scored with T_D, T_MR,
T_M and P_A — no hierarchy-specific metrics — against a flat
deployment given the **same total message budget**.

Budget accounting: flat spends everything on heartbeats (``N/η_flat``
messages per unit time).  The federation spends ``N/η_leaf`` on
heartbeats plus ``(L+1)/t_digest`` on the digest plane; the driver
solves ``η_leaf`` so the totals match.  What the budget buys differs:
the flat root *receives* all ``N/η`` heartbeats itself, while the
federated root receives only its share of plane gossip — the root-load
column is the scalability argument, the QoS columns are its price.

Scenarios, in the style of large-scale membership evaluations
(mass-failure and churn sweeps): steady-state accuracy, single-crash
detection, a simultaneous crash of ≥25% of the population
(detection-completeness over time), and a churn schedule of
crash/restart/remove operations applied identically to both systems.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.nfd_s import NFDS
from repro.errors import InvalidParameterError
from repro.experiments.common import ExperimentTable
from repro.hierarchy import HierarchicalMonitor, HierarchyConfig
from repro.metrics.qos import estimate_accuracy, pool_accuracy
from repro.metrics.transitions import SUSPECT, OutputTrace
from repro.net.delays import DelayDistribution, ExponentialDelay
from repro.service.monitor_service import MonitorService
from repro.sim.engine import Simulator

__all__ = ["HierarchySettings", "run_hierarchy_comparison"]


@dataclass
class HierarchySettings:
    """Shared workload parameters for E16.

    The regime is deliberately lossier than Fig. 12 (5% loss, mean
    delay 0.1, δ only 5× the mean delay) so both systems make
    *measurable* mistakes within a seconds-bounded run — T_MR/T_M
    columns with actual numbers in them, not NaN.
    """

    n_senders: int = 48
    n_leaves: int = 4
    eta_flat: float = 1.0
    delta: float = 0.5
    mean_delay: float = 0.1
    loss_probability: float = 0.05
    t_digest: float = 1.0
    plane_t_fail: float = 8.0
    seed: int = 1616

    @property
    def delay(self) -> DelayDistribution:
        return ExponentialDelay(self.mean_delay)

    @property
    def flat_budget(self) -> float:
        """Total messages per unit time of the flat deployment."""
        return self.n_senders / self.eta_flat

    @property
    def eta_leaf(self) -> float:
        """Leaf heartbeat period matching the federation's total budget.

        Solves ``N/η_leaf + (L+1)/t_digest = N/η_flat``: the digest
        plane's spend is taken out of the heartbeat budget.
        """
        plane_rate = (self.n_leaves + 1) / self.t_digest
        remaining = self.flat_budget - plane_rate
        if remaining <= 0:
            raise InvalidParameterError(
                "digest plane alone exceeds the flat message budget; "
                "increase n_senders or t_digest"
            )
        return self.n_senders / remaining

    def hierarchy_config(self, seed_offset: int = 0) -> HierarchyConfig:
        return HierarchyConfig(
            n_senders=self.n_senders,
            n_leaves=self.n_leaves,
            eta=self.eta_leaf,
            delta=self.delta,
            sender_delay=self.delay,
            sender_loss=self.loss_probability,
            t_digest=self.t_digest,
            plane_t_fail=self.plane_t_fail,
            plane_delay=self.delay,
            plane_loss=self.loss_probability,
            seed=self.seed + seed_offset,
        )


# ---------------------------------------------------------------------- #
# Flat baseline
# ---------------------------------------------------------------------- #


class _FlatRun:
    """One flat MonitorService deployment on its own simulator."""

    def __init__(self, settings: HierarchySettings, seed_offset: int) -> None:
        s = settings
        self.sim = Simulator()
        self.service = MonitorService(
            self.sim, seed=s.seed + seed_offset, engine="soa"
        )
        width = max(4, len(str(s.n_senders - 1)))
        self.names = [f"s{i:0{width}d}" for i in range(s.n_senders)]
        for name in self.names:
            self.service.add_process(
                name,
                NFDS(eta=s.eta_flat, delta=s.delta),
                eta=s.eta_flat,
                delay=s.delay,
                loss_probability=s.loss_probability,
            )
        self.service.start()
        self.crash_times: Dict[str, float] = {}

    def crash(self, name: str, at_time: Optional[float] = None) -> None:
        self.service.crash(name, at_time=at_time)
        when = self.sim.now if at_time is None else at_time
        prev = self.crash_times.get(name)
        self.crash_times[name] = when if prev is None else min(prev, when)

    def finish(self) -> Dict[str, OutputTrace]:
        # Latest incarnation per name carries the current view; earlier
        # incarnations' mistakes are pooled by the accuracy runs only.
        traces: Dict[str, OutputTrace] = {}
        best: Dict[str, int] = {}
        for (name, inc), trace in self.service.finish().items():
            if name not in best or inc > best[name]:
                best[name] = inc
                traces[name] = trace
        return traces


def _final_detection(trace: OutputTrace, crash_time: float) -> float:
    if trace.current_output != SUSPECT:
        return math.inf
    transitions = trace.transitions
    final = transitions[-1].time if transitions else trace.start_time
    return max(0.0, final - crash_time)


def _completeness(
    traces: Dict[str, OutputTrace], crashed: Sequence[str], at_time: float
) -> float:
    if not crashed:
        return math.nan
    hits = sum(
        1
        for name in crashed
        if name in traces and traces[name].output_at(at_time) == SUSPECT
    )
    return hits / len(crashed)


# ---------------------------------------------------------------------- #
# Scenario runs
# ---------------------------------------------------------------------- #


def _accuracy_run(
    settings: HierarchySettings, horizon: float, warmup: float
) -> Tuple[dict, dict]:
    """Failure-free steady state for both systems; returns row dicts."""
    s = settings

    flat = _FlatRun(s, seed_offset=1)
    flat.sim.run_until(horizon)
    flat_traces = flat.finish()
    flat_acc = pool_accuracy(
        [
            estimate_accuracy(t, warmup=warmup)
            for t in flat_traces.values()
        ]
    )
    flat_hb = sum(
        flat.service.process(n).link.stats.offered for n in flat.names
    )

    hm = HierarchicalMonitor(s.hierarchy_config(seed_offset=2))
    hm.start()
    hm.run_until(horizon)
    hier = hm.finish()
    hier_acc = pool_accuracy(
        [
            estimate_accuracy(t, warmup=warmup)
            for t in hier.root_traces.values()
        ]
    )

    flat_row = {
        "acc": flat_acc,
        "msgs_per_s": flat_hb / horizon,
        # The flat root IS the monitor: it receives every delivered
        # heartbeat itself.
        "root_rx": sum(
            flat.service.process(n).link.stats.delivered for n in flat.names
        )
        / horizon,
        "n_processes": s.n_senders + 1,
    }
    hier_row = {
        "acc": hier_acc,
        "msgs_per_s": (hier.heartbeat_messages + hier.plane_messages)
        / horizon,
        # The federated root receives its share of plane gossip only.
        "root_rx": hier.plane_messages / (s.n_leaves + 1) / horizon,
        "n_processes": s.n_senders + s.n_leaves + 1,
    }
    return flat_row, hier_row


def _detection_runs(
    settings: HierarchySettings, n_runs: int, settle: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-crash detection times at the root, for both systems."""
    s = settings
    flat_td: List[float] = []
    hier_td: List[float] = []
    for i in range(n_runs):
        # Vary the crash phase across the heartbeat/digest period.
        crash_at = settle + (i % 7) * s.eta_flat / 7.0
        horizon = crash_at + 30.0 * s.eta_flat
        victim_idx = i % s.n_senders

        flat = _FlatRun(s, seed_offset=100 + i)
        victim = flat.names[victim_idx]
        flat.crash(victim, at_time=crash_at)
        flat.sim.run_until(horizon)
        flat_td.append(
            _final_detection(flat.finish()[victim], crash_at)
        )

        hm = HierarchicalMonitor(s.hierarchy_config(seed_offset=200 + i))
        victim = hm.sender_names[victim_idx]
        hm.start()
        hm.crash_sender(victim, at_time=crash_at)
        hm.run_until(horizon)
        hier_td.append(hm.finish().detection_times()[victim])
    return np.asarray(flat_td), np.asarray(hier_td)


def _mass_failure_run(
    settings: HierarchySettings,
    crash_fraction: float,
    crash_at: float,
    offsets: Sequence[float],
) -> List[Tuple[float, float, float]]:
    """Crash a fraction of the population at one instant; track
    root-level detection completeness at ``crash_at + offset``."""
    s = settings
    n_crash = max(1, int(round(crash_fraction * s.n_senders)))
    horizon = crash_at + max(offsets) + 1.0

    rng = np.random.default_rng(
        np.random.SeedSequence([s.seed, zlib.crc32(b"mass-failure")])
    )
    victims_idx = sorted(
        int(i) for i in rng.choice(s.n_senders, size=n_crash, replace=False)
    )

    flat = _FlatRun(s, seed_offset=11)
    flat_victims = [flat.names[i] for i in victims_idx]
    for name in flat_victims:
        flat.crash(name, at_time=crash_at)
    flat.sim.run_until(horizon)
    flat_traces = flat.finish()

    hm = HierarchicalMonitor(s.hierarchy_config(seed_offset=12))
    hier_victims = [hm.sender_names[i] for i in victims_idx]
    hm.start()
    hm.crash_senders(hier_victims, at_time=crash_at)
    hm.run_until(horizon)
    hier = hm.finish()

    rows = []
    for offset in offsets:
        at = crash_at + offset
        rows.append(
            (
                offset,
                _completeness(flat_traces, flat_victims, at),
                hier.detection_completeness(at),
            )
        )
    return rows


def _churn_run(
    settings: HierarchySettings, n_ops: int, horizon: float
) -> Tuple[dict, dict]:
    """Apply one crash/restart/remove schedule to both systems."""
    s = settings
    rng = np.random.default_rng(
        np.random.SeedSequence([s.seed, zlib.crc32(b"churn")])
    )
    start, end = 40.0, horizon - 40.0
    times = np.sort(rng.uniform(start, end, size=n_ops))

    flat = _FlatRun(s, seed_offset=21)
    hm = HierarchicalMonitor(s.hierarchy_config(seed_offset=22))
    hm.start()

    # The same op schedule is *scheduled* against both simulators, so
    # both systems live through an identical membership history.
    dead: set = set()
    removed: set = set()
    alive = set(range(s.n_senders))
    ops = {"crash": 0, "restart": 0, "remove": 0}
    for t in times:
        t = float(t)
        choice = rng.random()
        if choice < 0.5 and alive:
            idx = int(rng.choice(sorted(alive)))
            alive.discard(idx)
            dead.add(idx)
            ops["crash"] += 1
            # Resolve the victim at fire time: a restart scheduled
            # between now and t swaps the incarnation, and the crash
            # must hit whichever one is live when it lands.
            flat.sim.schedule_at(
                t, lambda i=idx: flat.crash(flat.names[i])
            )
            hm.crash_sender(hm.sender_names[idx], at_time=t)
        elif choice < 0.8 and dead:
            idx = int(rng.choice(sorted(dead)))
            dead.discard(idx)
            alive.add(idx)
            ops["restart"] += 1

            def do_restart(i=idx):
                flat.service.restart_process(
                    flat.names[i],
                    NFDS(eta=s.eta_flat, delta=s.delta),
                    eta=s.eta_flat,
                    delay=s.delay,
                    loss_probability=s.loss_probability,
                )
                flat.crash_times.pop(flat.names[i], None)

            flat.sim.schedule_at(t, do_restart)
            hm.restart_sender(hm.sender_names[idx], at_time=t)
        elif alive and len(alive) > s.n_leaves:
            idx = int(rng.choice(sorted(alive)))
            alive.discard(idx)
            removed.add(idx)
            ops["remove"] += 1
            flat.sim.schedule_at(
                t,
                lambda i=idx: flat.service.remove_process(flat.names[i]),
            )
            hm.remove_sender(hm.sender_names[idx], at_time=t)

    flat.sim.run_until(horizon)
    hm.run_until(horizon)
    flat_traces = flat.finish()
    hier = hm.finish()

    def summarize(suspected, trusted) -> dict:
        dead_names_f = {i for i in dead}
        return {
            "undetected_dead": sum(
                1 for i in dead_names_f if _name(s, i) in trusted
            ),
            "false_suspects": sum(
                1 for i in alive if _name(s, i) in suspected
            ),
        }

    flat_suspected = {
        n
        for n in flat.service.process_names
        if flat.service.output(n) == "S"
    }
    flat_trusted = set(flat.service.trusted_set())
    hier_suspected = set(hm.root.suspected_set())
    hier_trusted = set(hm.root.trusted_set())

    flat_row = dict(ops=ops, **summarize(flat_suspected, flat_trusted))
    hier_row = dict(ops=ops, **summarize(hier_suspected, hier_trusted))
    # Detection completeness over the still-dead population at the end.
    dead_names = [_name(s, i) for i in dead]
    flat_row["completeness"] = _completeness(
        flat_traces, [n for n in dead_names if n in flat_traces], horizon
    )
    hier_row["completeness"] = _completeness(
        hier.root_traces, dead_names, horizon
    )
    return flat_row, hier_row


def _name(settings: HierarchySettings, idx: int) -> str:
    width = max(4, len(str(settings.n_senders - 1)))
    return f"s{idx:0{width}d}"


# ---------------------------------------------------------------------- #
# Driver
# ---------------------------------------------------------------------- #


def run_hierarchy_comparison(
    settings: Optional[HierarchySettings] = None,
    horizon: float = 1_500.0,
    n_crash_runs: int = 8,
    crash_fraction: float = 0.25,
    churn_ops: int = 24,
) -> List[ExperimentTable]:
    """Run E16 and return its three tables."""
    s = settings if settings is not None else HierarchySettings()
    if not 0.0 < crash_fraction <= 1.0:
        raise InvalidParameterError(
            f"crash_fraction must be in (0, 1], got {crash_fraction}"
        )
    warmup = 10.0 * max(s.eta_flat, s.t_digest) + s.plane_t_fail

    # ----- table 1: QoS at matched budget ----------------------------- #
    flat_acc, hier_acc = _accuracy_run(s, horizon=horizon, warmup=warmup)
    flat_td, hier_td = _detection_runs(
        s, n_runs=n_crash_runs, settle=warmup
    )
    qos = ExperimentTable(
        title=(
            f"E16 - two-level federation (L={s.n_leaves} leaves, digest "
            f"plane every {s.t_digest:g}) vs flat monitoring, "
            f"N={s.n_senders} senders, matched total message budget "
            f"({s.flat_budget:g} msgs/s: eta_flat={s.eta_flat:g}, "
            f"eta_leaf={s.eta_leaf:.3f})"
        ),
        columns=[
            "architecture",
            "msgs/s total",
            "root rx msgs/s",
            "mean T_D",
            "max T_D",
            "E(T_MR)",
            "E(T_M)",
            "P_A",
        ],
    )
    qos.add_row(
        "flat",
        flat_acc["msgs_per_s"],
        flat_acc["root_rx"],
        float(flat_td.mean()),
        float(flat_td.max()),
        flat_acc["acc"].e_tmr,
        flat_acc["acc"].e_tm,
        flat_acc["acc"].query_accuracy,
    )
    qos.add_row(
        "two-level",
        hier_acc["msgs_per_s"],
        hier_acc["root_rx"],
        float(hier_td.mean()),
        float(hier_td.max()),
        hier_acc["acc"].e_tmr,
        hier_acc["acc"].e_tm,
        hier_acc["acc"].query_accuracy,
    )
    qos.add_note(
        "T_D/T_MR/T_M/P_A are measured on the ROOT's per-sender output "
        "traces for both systems (the paper's metrics, unchanged)"
    )
    qos.add_note(
        "root rx msgs/s is the scalability axis: the flat root absorbs "
        "every heartbeat, the federated root only its share of digest "
        "gossip - the QoS deltas are what that relief costs"
    )
    qos.add_note(
        "hierarchy detection = leaf NFD-S detection + digest publish "
        "(<= t_digest) + epidemic spread to the root"
    )

    # ----- table 2: mass failure -------------------------------------- #
    offsets = [
        0.5 * s.delta,
        s.delta + s.eta_flat,
        s.delta + s.eta_leaf + s.t_digest,
        s.delta + s.eta_leaf + 3 * s.t_digest,
        s.delta + s.eta_leaf + 6 * s.t_digest,
        s.delta + s.eta_leaf + 10 * s.t_digest,
    ]
    mass = ExperimentTable(
        title=(
            f"E16 mass failure - {crash_fraction:.0%} of {s.n_senders} "
            f"senders crash simultaneously; root-level detection "
            f"completeness over time"
        ),
        columns=[
            "dt after crash",
            "flat completeness",
            "two-level completeness",
        ],
    )
    for offset, flat_c, hier_c in _mass_failure_run(
        s, crash_fraction, crash_at=warmup + 20.0, offsets=offsets
    ):
        mass.add_row(offset, flat_c, hier_c)
    mass.add_note(
        "completeness = fraction of crashed senders suspected at the "
        "root by crash+dt; flat completes within eta+delta, the "
        "federation pays the digest plane's dissemination tail"
    )

    # ----- table 3: churn --------------------------------------------- #
    churn_horizon = max(400.0, horizon / 3.0)
    flat_churn, hier_churn = _churn_run(
        s, n_ops=churn_ops, horizon=churn_horizon
    )
    churn = ExperimentTable(
        title=(
            f"E16 churn - {churn_ops} crash/restart/remove ops over "
            f"{churn_horizon:g} time units, identical schedule for both "
            f"architectures"
        ),
        columns=[
            "architecture",
            "crashes",
            "restarts",
            "removes",
            "final completeness",
            "undetected dead",
            "false suspects",
        ],
    )
    for label, row in (("flat", flat_churn), ("two-level", hier_churn)):
        churn.add_row(
            label,
            row["ops"]["crash"],
            row["ops"]["restart"],
            row["ops"]["remove"],
            row["completeness"],
            row["undetected_dead"],
            row["false_suspects"],
        )
    churn.add_note(
        "final completeness over senders still crashed at the horizon; "
        "undetected dead / false suspects are end-state disagreements "
        "with ground truth"
    )
    return [qos, mass, churn]
