"""Command-line entry point regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments <experiment> [--full] [--out DIR]
    python -m repro.experiments all --out results/

``--full`` runs at the paper's scale (Fig. 12 with 500 mistake-recurrence
intervals per point, up to ~5·10⁸ heartbeats for the largest ``T_D^U``);
the default is a faster, shape-preserving scale.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.experiments.adaptive_exp import run_adaptive
from repro.experiments.common import ExperimentTable
from repro.experiments.config_examples import run_config_examples
from repro.experiments.cutoff_ablation import run_cutoff_ablation
from repro.experiments.detection_time import run_detection_time
from repro.experiments.distributions import run_distributions
from repro.experiments.election_exp import run_election_qos
from repro.experiments.fault_sensitivity import run_fault_sensitivity
from repro.experiments.gossip_comparison import run_gossip_comparison
from repro.experiments.hierarchy_exp import run_hierarchy_comparison
from repro.experiments.fig12 import (
    fig12_ascii_plot,
    fig12_tm_table,
    fig12_tmr_table,
    run_fig12,
)
from repro.experiments.nfde_window import run_nfde_window
from repro.experiments.optimality import run_optimality
from repro.experiments.phi_comparison import run_phi_comparison
from repro.experiments.profile_costs import run_profile_costs
from repro.experiments.wan_exp import run_wan

__all__ = ["main"]


def _fig12_tables(full: bool, jobs: int, batch_size: Optional[int]):
    points = run_fig12(
        target_mistakes=500 if full else 200,
        max_heartbeats=600_000_000 if full else 30_000_000,
        jobs=jobs,
        batch_size=batch_size,
    )
    tables = [fig12_tmr_table(points), fig12_tm_table(points)]
    print()
    print(fig12_ascii_plot(points))
    return tables


# Each entry takes (full, jobs, batch_size).  `jobs` fans the
# experiment's independent units (sweep points or crash runs) out over
# worker processes via repro.sim.parallel; `batch_size` routes
# compatible units through the vectorized batch kernels of
# repro.sim.batch (batching within a worker composes with jobs across
# workers).  Experiments without the corresponding axis simply ignore
# them.  Results are bit-identical for every jobs/batch_size value.
_EXPERIMENTS: Dict[str, Callable[[bool, int, Optional[int]], list]] = {
    "fig12": _fig12_tables,
    "config-examples": lambda full, jobs, batch: [run_config_examples()],
    "nfde-window": lambda full, jobs, batch: [
        run_nfde_window(target_mistakes=3000 if full else 800, jobs=jobs)
    ],
    "optimality": lambda full, jobs, batch: [
        run_optimality(
            target_mistakes=5000 if full else 1000,
            jobs=jobs,
            batch_size=batch,
        )
    ],
    "detection-time": lambda full, jobs, batch: [
        run_detection_time(
            n_runs=1000 if full else 200, jobs=jobs, batch_size=batch
        )
    ],
    "cutoff-ablation": lambda full, jobs, batch: [
        run_cutoff_ablation(
            target_mistakes=2000 if full else 500,
            jobs=jobs,
            batch_size=batch,
        )
    ],
    "distributions": lambda full, jobs, batch: [
        run_distributions(target_mistakes=2000 if full else 500)
    ],
    "fault-sensitivity": lambda full, jobs, batch: run_fault_sensitivity(
        full=full, jobs=jobs
    ),
    "election": lambda full, jobs, batch: run_election_qos(full=full),
    "adaptive": lambda full, jobs, batch: [run_adaptive()],
    "phi-accrual": lambda full, jobs, batch: [
        run_phi_comparison(horizon=100_000.0 if full else 20_000.0)
    ],
    "profile-costs": lambda full, jobs, batch: [run_profile_costs()],
    "gossip": lambda full, jobs, batch: [
        run_gossip_comparison(
            horizon=40_000.0 if full else 10_000.0,
            n_crash_runs=200 if full else 40,
        )
    ],
    "hierarchy": lambda full, jobs, batch: run_hierarchy_comparison(
        horizon=4_000.0 if full else 1_500.0,
        n_crash_runs=24 if full else 8,
    ),
    "wan": lambda full, jobs, batch: run_wan(full=full, jobs=jobs),
}


def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "live":
        # The live runtime has its own sub-CLI (soak/send/monitor) with
        # role-specific options; hand it everything after "live".
        from repro.experiments.live_cli import live_main

        return live_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'On the Quality of Service of "
            "Failure Detectors' (Chen, Toueg, Aguilera)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all", "report"],
        help=(
            "which experiment to run ('all' for every one; 'report' "
            "writes a single markdown report with every table; see also "
            "the 'live' subcommand: `... live {soak,send,monitor} -h`)"
        ),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at the paper's full statistical scale (slow)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to save result tables as text files",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for parallel experiments (0 = all cores); "
            "results are bit-identical to --jobs 1 for the same seed"
        ),
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "replica batch size for the vectorized batch kernels "
            "(repro.sim.batch); composes with --jobs (batch within a "
            "worker, workers across cores); results are bit-identical "
            "to the unbatched path for the same seed"
        ),
    )
    parser.add_argument(
        "--telemetry-out",
        type=Path,
        default=None,
        help=(
            "enable the telemetry layer and append one JSON-lines "
            "snapshot (schema repro.telemetry/1) per experiment to this "
            "file; the final Prometheus text exposition is written "
            "alongside it with a .prom suffix"
        ),
    )
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0 (0 = all cores), got {args.jobs}")
    if args.batch_size is not None and args.batch_size < 1:
        parser.error(f"--batch-size must be >= 1, got {args.batch_size}")

    if args.experiment == "report":
        from repro.experiments.report import generate_report

        out_dir = args.out if args.out is not None else Path("results")
        path = generate_report(
            out_dir / "REPORT.md",
            full=args.full,
            jobs=args.jobs,
            batch_size=args.batch_size,
            telemetry_out=args.telemetry_out,
        )
        print(f"report written: {path}")
        return 0

    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.telemetry_out is None:
        _run_experiments(names, args)
        return 0
    from repro.telemetry import export, runtime

    registry = runtime.enable()
    try:
        _run_experiments(names, args, telemetry=(registry, args.telemetry_out))
    finally:
        prom_path = args.telemetry_out.with_suffix(".prom")
        prom_path.parent.mkdir(parents=True, exist_ok=True)
        prom_path.write_text(export.to_prometheus(registry))
        runtime.disable()
    print(
        f"  telemetry: {args.telemetry_out} (+ {prom_path})", file=sys.stderr
    )
    return 0


def _run_experiments(names, args, telemetry=None) -> None:
    for name in names:
        start = time.time()
        tables = _EXPERIMENTS[name](args.full, args.jobs, args.batch_size)
        elapsed = time.time() - start
        for i, table in enumerate(tables):
            print()
            print(table.to_text())
            if args.out is not None:
                suffix = f"-{i}" if len(tables) > 1 else ""
                path = args.out / f"{name}{suffix}.txt"
                table.save(path)
                print(f"  saved: {path}")
        if telemetry is not None:
            from repro.telemetry import export

            registry, out_path = telemetry
            # One cumulative snapshot per experiment: diffing consecutive
            # lines attributes counter deltas to the experiment between
            # them.
            export.append_jsonl(out_path, registry, label=name)
        print(f"  [{name}: {elapsed:.1f}s]", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
