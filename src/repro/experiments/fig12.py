"""E1/E2 — the paper's Fig. 12 and its ``E(T_M)`` companion.

For each detection bound ``T_D^U``, all algorithms are configured to send
heartbeats at the same rate (η = 1) and satisfy ``T_D ≤ T_D^U``:

* NFD-S with ``δ = T_D^U − η`` (Theorem 5.1);
* NFD-E with ``α = T_D^U − E(D) − η`` and a 32-message window;
* SFD-L: cutoff ``c = 0.16`` (8·E(D)), ``TO = T_D^U − c``;
* SFD-S: cutoff ``c = 0.08`` (4·E(D)), ``TO = T_D^U − c``;

and the accuracy — ``E(T_MR)``, ``E(T_M)``, ``P_A`` — is measured over a
failure-free run containing up to ``target_mistakes`` mistake-recurrence
intervals (the paper uses 500).  The analytic ``E(T_MR)`` of Theorem 5 is
plotted alongside.

Expected shape (paper's findings, all reproduced):

* NFD-S simulation ≈ analytic curve;
* NFD-E ≈ NFD-S;
* both beat SFD-L/SFD-S by up to an order of magnitude at larger
  ``T_D^U``, because the cutoff forces SFD into a bad trade-off;
* every algorithm's ``E(T_M)`` stays below ≈ η = 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.nfds_theory import NFDSAnalysis
from repro.experiments.common import (
    FIG12_SETTINGS,
    ExperimentTable,
    Fig12Settings,
    steady_state_warmup,
)
from repro.sim.batch import (
    AccuracyTask,
    run_accuracy_task,
    run_accuracy_tasks_batched,
)
from repro.sim.fastsim import FastAccuracyResult
from repro.sim.parallel import parallel_map

__all__ = [
    "Fig12Point",
    "run_fig12",
    "fig12_tmr_table",
    "fig12_tm_table",
    "fig12_ascii_plot",
]


@dataclass
class Fig12Point:
    """All measurements for one ``T_D^U`` value."""

    tdu: float
    analytic_tmr: float
    analytic_tm: float
    nfds: FastAccuracyResult
    nfde: FastAccuracyResult
    sfd_l: FastAccuracyResult
    sfd_s: FastAccuracyResult


def _fig12_tasks(
    idx: int,
    tdu: float,
    settings: Fig12Settings,
    target_mistakes: int,
    max_heartbeats: int,
    seed: int,
) -> List[AccuracyTask]:
    """The four accuracy tasks (nfds, nfde, sfd_l, sfd_s) of one point.

    Seeds are a pure function of ``(seed, idx)``, so tasks can be
    evaluated in any order — on any worker, through the serial kernels
    or the batched executor — with identical results.
    """
    delay = settings.delay
    eta = settings.eta
    p_l = settings.loss_probability
    delta = tdu - eta
    if delta < 0:
        raise ValueError(f"T_D^U={tdu} smaller than eta={eta}")
    alpha = tdu - settings.mean_delay - eta
    common = dict(
        loss_probability=p_l,
        delay=delay,
        target_mistakes=target_mistakes,
        max_heartbeats=max_heartbeats,
    )
    return [
        AccuracyTask(
            "nfds",
            dict(
                eta=eta,
                delta=delta,
                seed=seed + 7 * idx,
                warmup=steady_state_warmup(eta, delta=delta),
                **common,
            ),
        ),
        AccuracyTask(
            "nfde",
            dict(
                eta=eta,
                alpha=alpha,
                window=settings.nfde_window,
                seed=seed + 7 * idx + 1,
                warmup=steady_state_warmup(
                    eta,
                    alpha=alpha,
                    mean_delay=settings.mean_delay,
                    window=settings.nfde_window,
                ),
                **common,
            ),
        ),
        AccuracyTask(
            "sfd",
            dict(
                eta=eta,
                timeout=tdu - settings.cutoff_large,
                cutoff=settings.cutoff_large,
                seed=seed + 7 * idx + 2,
                warmup=steady_state_warmup(
                    eta,
                    timeout=tdu - settings.cutoff_large,
                    cutoff=settings.cutoff_large,
                ),
                **common,
            ),
        ),
        AccuracyTask(
            "sfd",
            dict(
                eta=eta,
                timeout=tdu - settings.cutoff_small,
                cutoff=settings.cutoff_small,
                seed=seed + 7 * idx + 3,
                warmup=steady_state_warmup(
                    eta,
                    timeout=tdu - settings.cutoff_small,
                    cutoff=settings.cutoff_small,
                ),
                **common,
            ),
        ),
    ]


def _fig12_assemble(
    tdu: float,
    settings: Fig12Settings,
    results: List[FastAccuracyResult],
) -> Fig12Point:
    """Combine the four task results of one point with its analytics."""
    eta = settings.eta
    delta = tdu - eta
    analysis = NFDSAnalysis(eta, delta, settings.loss_probability, settings.delay)
    nfds, nfde, sfd_l, sfd_s = results
    return Fig12Point(
        tdu=tdu,
        analytic_tmr=analysis.e_tmr(),
        analytic_tm=analysis.e_tm(),
        nfds=nfds,
        nfde=nfde,
        sfd_l=sfd_l,
        sfd_s=sfd_s,
    )


def _fig12_point(
    idx: int,
    tdu: float,
    settings: Fig12Settings,
    target_mistakes: int,
    max_heartbeats: int,
    seed: int,
) -> Fig12Point:
    """Evaluate one ``T_D^U`` grid point (all four algorithms)."""
    tasks = _fig12_tasks(
        idx, tdu, settings, target_mistakes, max_heartbeats, seed
    )
    return _fig12_assemble(
        tdu, settings, [run_accuracy_task(t) for t in tasks]
    )


def run_fig12(
    tdu_values: Optional[Sequence[float]] = None,
    settings: Fig12Settings = FIG12_SETTINGS,
    target_mistakes: int = 500,
    max_heartbeats: int = 50_000_000,
    seed: int = 2000,
    jobs: Optional[int] = 1,
    batch_size: Optional[int] = None,
) -> List[Fig12Point]:
    """Run the Fig. 12 sweep; one :class:`Fig12Point` per ``T_D^U``.

    ``max_heartbeats`` caps the per-point work; at the paper's full scale
    (T_D^U = 3.5 needs ≈ 5·10⁸ heartbeats for 500 mistakes) pass a larger
    cap, e.g. via ``python -m repro.experiments fig12 --full``.

    ``jobs`` fans the grid points out over worker processes
    (:mod:`repro.sim.parallel`); results are bit-identical to ``jobs=1``
    for the same seed.  ``0``/``None`` uses all cores.  ``batch_size``
    instead flattens the sweep into per-algorithm tasks and runs
    compatible ones through the lockstep multi-seed kernels
    (:func:`repro.sim.batch.run_accuracy_tasks_batched`) — e.g. all the
    SFD points of the sweep advance as one batch — again bit-identical.
    """
    if tdu_values is None:
        tdu_values = settings.tdu_grid()

    if batch_size is not None:
        tasks = [
            task
            for idx, tdu in enumerate(tdu_values)
            for task in _fig12_tasks(
                idx, tdu, settings, target_mistakes, max_heartbeats, seed
            )
        ]
        results = run_accuracy_tasks_batched(
            tasks, batch_size=batch_size, jobs=jobs
        )
        return [
            _fig12_assemble(tdu, settings, results[4 * i : 4 * i + 4])
            for i, tdu in enumerate(tdu_values)
        ]

    def point(args) -> Fig12Point:
        idx, tdu = args
        return _fig12_point(
            idx, tdu, settings, target_mistakes, max_heartbeats, seed
        )

    return parallel_map(point, list(enumerate(tdu_values)), jobs=jobs)


def fig12_tmr_table(points: Sequence[Fig12Point]) -> ExperimentTable:
    """E1: average mistake recurrence time ``E(T_MR)`` vs ``T_D^U``."""
    table = ExperimentTable(
        title=(
            "Fig. 12 — E(T_MR) vs detection bound T_D^U "
            "(eta=1, p_L=0.01, D~Exp(0.02))"
        ),
        columns=[
            "T_D^U",
            "analytic",
            "NFD-S",
            "NFD-E",
            "SFD-L",
            "SFD-S",
            "NFD/SFD-L",
        ],
    )
    for p in points:
        advantage = (
            p.nfds.e_tmr / p.sfd_l.e_tmr
            if not math.isnan(p.nfds.e_tmr) and not math.isnan(p.sfd_l.e_tmr)
            else math.nan
        )
        table.add_row(
            p.tdu,
            p.analytic_tmr,
            p.nfds.e_tmr,
            p.nfde.e_tmr,
            p.sfd_l.e_tmr,
            p.sfd_s.e_tmr,
            advantage,
        )
    truncated = [p.tdu for p in points if p.nfds.truncated]
    if truncated:
        table.add_note(
            f"NFD points capped by max_heartbeats at T_D^U={truncated} "
            "(fewer than the target mistake count observed; at full scale "
            "run with --full)"
        )
    table.add_note(
        "paper: NFD-S/NFD-E track the analytic curve and beat SFD by up "
        "to an order of magnitude at larger T_D^U"
    )
    return table


def fig12_ascii_plot(points: Sequence[Fig12Point]) -> str:
    """Log-scale ASCII rendering of the Fig. 12 series."""
    from repro.experiments.ascii_plot import render_series

    xs = [p.tdu for p in points]
    return render_series(
        xs,
        [
            ("-", "analytic", [p.analytic_tmr for p in points]),
            ("+", "NFD-S", [p.nfds.e_tmr for p in points]),
            ("x", "NFD-E", [p.nfde.e_tmr for p in points]),
            ("o", "SFD-L", [p.sfd_l.e_tmr for p in points]),
            ("*", "SFD-S", [p.sfd_s.e_tmr for p in points]),
        ],
        title="Fig. 12 (ASCII): E(T_MR) vs T_D^U, log scale",
    )


def fig12_tm_table(points: Sequence[Fig12Point]) -> ExperimentTable:
    """E2: average mistake duration ``E(T_M)`` (companion to Fig. 12).

    The paper omits the plot because every algorithm's ``E(T_M)`` is
    similar and bounded above by ≈ η = 1; this table shows exactly that.
    """
    table = ExperimentTable(
        title="E(T_M) companion table (paper: all ≈ bounded above by eta=1)",
        columns=["T_D^U", "analytic", "NFD-S", "NFD-E", "SFD-L", "SFD-S"],
    )
    for p in points:
        table.add_row(
            p.tdu,
            p.analytic_tm,
            p.nfds.e_tm,
            p.nfde.e_tm,
            p.sfd_l.e_tm,
            p.sfd_s.e_tm,
        )
    return table
