"""Deterministic, scripted fault scenarios for a running simulation.

A :class:`FaultScenario` is a declarative list of timed fault events —
loss/delay regime shifts, partitions, duplication/reordering windows,
clock jumps, drift onset, and process stalls.  The
:class:`ScenarioEngine` compiles the script onto a
:class:`~repro.sim.engine.Simulator`: window events toggle the
:class:`~repro.faults.links.FaultyLink`, clock events re-program a
:class:`~repro.net.clocks.FaultableClock`, and every activation is
recorded in a :class:`FaultTimeline` (and, when telemetry is enabled,
emitted as registry series) so QoS estimates can later be segmented by
fault window.

Determinism contract: the scenario is *data* — events are canonically
ordered by :class:`FaultScenario` regardless of the order they were
written in, all scheduling happens up front at install time, and the
only randomness faults consume comes from the dedicated
``STREAM_FAULTS`` stream inside :class:`~repro.faults.links.FaultyLink`.
Same seed + same event set ⇒ bit-identical run, for any event
interleaving and any worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.errors import InvalidParameterError
from repro.net.clocks import Clock, FaultableClock
from repro.net.delays import DelayDistribution
from repro.sim.engine import Simulator
from repro.telemetry.runtime import active as _telemetry_active

__all__ = [
    "LossRegime",
    "DelayRegime",
    "Partition",
    "Duplication",
    "Reordering",
    "ClockJump",
    "DriftOnset",
    "Stall",
    "FaultEvent",
    "FaultWindow",
    "FaultTimeline",
    "FaultScenario",
    "ScenarioEngine",
]

_CLOCK_TARGETS = ("sender", "monitor")


def _check_time(label: str, value: float) -> None:
    if not value >= 0.0 or math.isinf(value):
        raise InvalidParameterError(
            f"{label} must be a finite time >= 0, got {value}"
        )


def _check_probability(label: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise InvalidParameterError(
            f"{label} must be in [0, 1], got {value}"
        )


@dataclass(frozen=True)
class LossRegime:
    """At ``time``, the base link's loss probability becomes ``loss_probability``."""

    time: float
    loss_probability: float

    def __post_init__(self) -> None:
        _check_time("time", self.time)
        _check_probability("loss_probability", self.loss_probability)


@dataclass(frozen=True)
class DelayRegime:
    """At ``time``, the base link's delay distribution becomes ``delay``."""

    time: float
    delay: DelayDistribution

    def __post_init__(self) -> None:
        _check_time("time", self.time)


@dataclass(frozen=True)
class Partition:
    """The link is cut (loss → 1) during ``[start, start + duration)``."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        _check_time("start", self.start)
        if self.duration <= 0:
            raise InvalidParameterError(
                f"duration must be positive, got {self.duration}"
            )


@dataclass(frozen=True)
class Duplication:
    """Each delivered message is duplicated with ``probability`` during
    the window; the copy arrives ``lag`` (+ uniform ``jitter``) later —
    a deliberate violation of the §3.1 no-duplication assumption."""

    start: float
    duration: float
    probability: float
    lag: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        _check_time("start", self.start)
        if self.duration <= 0:
            raise InvalidParameterError(
                f"duration must be positive, got {self.duration}"
            )
        _check_probability("probability", self.probability)
        if self.lag < 0 or self.jitter < 0:
            raise InvalidParameterError("lag/jitter must be >= 0")


@dataclass(frozen=True)
class Reordering:
    """Each delivered message is held back by ``extra_delay`` with
    ``probability`` during the window, so it can arrive after later
    heartbeats (out-of-order delivery)."""

    start: float
    duration: float
    probability: float
    extra_delay: float

    def __post_init__(self) -> None:
        _check_time("start", self.start)
        if self.duration <= 0:
            raise InvalidParameterError(
                f"duration must be positive, got {self.duration}"
            )
        _check_probability("probability", self.probability)
        if self.extra_delay <= 0:
            raise InvalidParameterError(
                f"extra_delay must be positive, got {self.extra_delay}"
            )


@dataclass(frozen=True)
class ClockJump:
    """At ``time``, the targeted clock steps by ``offset`` (NTP step,
    VM migration)."""

    time: float
    offset: float
    target: str = "sender"

    def __post_init__(self) -> None:
        _check_time("time", self.time)
        if self.target not in _CLOCK_TARGETS:
            raise InvalidParameterError(
                f"target must be one of {_CLOCK_TARGETS}, got {self.target!r}"
            )


@dataclass(frozen=True)
class DriftOnset:
    """At ``time``, the targeted clock's rate becomes ``1 + drift``."""

    time: float
    drift: float
    target: str = "sender"

    def __post_init__(self) -> None:
        _check_time("time", self.time)
        if self.drift <= -1.0:
            raise InvalidParameterError(
                f"drift must be > -1, got {self.drift}"
            )
        if self.target not in _CLOCK_TARGETS:
            raise InvalidParameterError(
                f"target must be one of {_CLOCK_TARGETS}, got {self.target!r}"
            )


@dataclass(frozen=True)
class Stall:
    """The sender freezes (GC pause) during ``[start, start + duration)``:
    slots in the window are deferred to its end (the armed send fires
    late, carrying its nominal ``σ_i``); slots overtaken by the pause
    are skipped."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        _check_time("start", self.start)
        if self.duration <= 0:
            raise InvalidParameterError(
                f"duration must be positive, got {self.duration}"
            )


FaultEvent = Union[
    LossRegime,
    DelayRegime,
    Partition,
    Duplication,
    Reordering,
    ClockJump,
    DriftOnset,
    Stall,
]

_WINDOW_KINDS = (Partition, Duplication, Reordering, Stall)


def _event_start(event: FaultEvent) -> float:
    return event.start if isinstance(event, _WINDOW_KINDS) else event.time


def _event_key(event: FaultEvent) -> Tuple[float, str, str]:
    # Canonical total order: start time, then kind name, then repr.
    # Sorting makes the scenario a *set* of events — the replay is
    # identical however the script happened to list them.
    return (_event_start(event), type(event).__name__, repr(event))


@dataclass(frozen=True)
class FaultWindow:
    """One activation span on the timeline (instant events have
    ``end == start``)."""

    start: float
    end: float
    kind: str
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, time: float) -> bool:
        if self.end == self.start:
            return time == self.start
        return self.start <= time < self.end


class FaultTimeline:
    """The windows a scenario activated, for post-hoc QoS segmentation."""

    def __init__(self) -> None:
        self._windows: List[FaultWindow] = []

    def add(self, window: FaultWindow) -> None:
        self._windows.append(window)

    @property
    def windows(self) -> Tuple[FaultWindow, ...]:
        return tuple(sorted(self._windows, key=lambda w: (w.start, w.kind)))

    def of_kind(self, kind: str) -> Tuple[FaultWindow, ...]:
        return tuple(w for w in self.windows if w.kind == kind)

    def __len__(self) -> int:
        return len(self._windows)


class FaultScenario:
    """An immutable, canonically ordered script of fault events.

    Args:
        events: the fault events, in any order.
        name: label used in tables and telemetry.
    """

    def __init__(
        self, events: Sequence[FaultEvent] = (), name: str = "scenario"
    ) -> None:
        for event in events:
            if not isinstance(event, FaultEvent.__args__):
                raise InvalidParameterError(
                    f"not a fault event: {event!r}"
                )
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=_event_key)
        )
        self.name = str(name)

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultScenario):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    @property
    def end_time(self) -> float:
        """Time after which the scenario changes nothing further."""
        end = 0.0
        for event in self._events:
            if isinstance(event, _WINDOW_KINDS):
                end = max(end, event.start + event.duration)
            else:
                end = max(end, event.time)
        return end

    def needs_faultable_clock(self, target: str) -> bool:
        """Whether the scenario re-programs the given clock."""
        return any(
            isinstance(e, (ClockJump, DriftOnset)) and e.target == target
            for e in self._events
        )

    @property
    def stall_windows(self) -> Tuple[Tuple[float, float], ...]:
        """``(start, end)`` spans of every stall, sorted."""
        return tuple(
            sorted(
                (e.start, e.start + e.duration)
                for e in self._events
                if isinstance(e, Stall)
            )
        )

    def send_gate(self) -> Optional[Callable[[float], float]]:
        """The :class:`~repro.sim.heartbeat.HeartbeatSender` gate
        implementing this scenario's stalls, or ``None`` if there are
        none (so a stall-free scenario leaves the sender untouched)."""
        windows = self.stall_windows
        if not windows:
            return None

        def gate(real_send: float) -> float:
            # Cascade: deferring out of one window may land inside the
            # next (overlapping/adjacent stalls merge naturally).
            for start, end in windows:
                if start <= real_send < end:
                    real_send = end
            return real_send

        return gate


class ScenarioEngine:
    """Compiles one scenario onto a simulator and a fault pipeline.

    Args:
        sim: the discrete-event simulator the run executes on.
        scenario: the script to install.
        link: the run's :class:`~repro.faults.links.FaultyLink`.
        sender_clock / monitor_clock: the clocks clock faults target;
            required (and required to be :class:`FaultableClock`) only
            when the scenario contains a fault for that target.
        label: telemetry label for this pipeline (defaults to the
            scenario name).

    Events whose time is already in the past at install time raise —
    a scenario is a *plan*, and silently skipping part of it would make
    the run's faults depend on when the engine was attached.  Window
    events already in progress are clamped to start now.
    """

    def __init__(
        self,
        sim: Simulator,
        scenario: FaultScenario,
        link,
        sender_clock: Optional[Clock] = None,
        monitor_clock: Optional[Clock] = None,
        label: Optional[str] = None,
    ) -> None:
        self._sim = sim
        self._scenario = scenario
        self._link = link
        self._clocks = {"sender": sender_clock, "monitor": monitor_clock}
        self._label = label if label is not None else scenario.name
        self._installed = False
        self._active = 0
        self.timeline = FaultTimeline()
        for target in _CLOCK_TARGETS:
            if scenario.needs_faultable_clock(target):
                clock = self._clocks[target]
                if not isinstance(clock, FaultableClock):
                    raise InvalidParameterError(
                        f"scenario {scenario.name!r} contains {target} "
                        f"clock faults but the {target} clock is "
                        f"{type(clock).__name__}; pass a FaultableClock"
                    )

    @property
    def scenario(self) -> FaultScenario:
        return self._scenario

    @property
    def active_faults(self) -> int:
        """Number of currently active fault windows."""
        return self._active

    def _emit(self, kind: str, delta: int) -> None:
        registry = _telemetry_active()
        self._active += delta
        if registry is None:
            return
        registry.counter(
            "fault_events_total",
            "fault-scenario activations/deactivations",
            labels={"kind": kind, "scenario": self._label},
        ).inc()
        registry.gauge(
            "fault_active",
            "currently active fault windows",
            labels={"scenario": self._label},
        ).set(self._active)

    def install(self) -> None:
        """Schedule every event of the scenario; call once, before the
        horizon that should see the faults."""
        if self._installed:
            raise InvalidParameterError("scenario already installed")
        self._installed = True
        now = self._sim.now
        for event in self._scenario.events:
            start = _event_start(event)
            if isinstance(event, _WINDOW_KINDS):
                end = event.start + event.duration
                if end <= now:
                    raise InvalidParameterError(
                        f"fault window {event!r} ends at {end}, before "
                        f"install time {now}"
                    )
                start = max(start, now)
            elif start < now:
                raise InvalidParameterError(
                    f"fault event {event!r} is scheduled before install "
                    f"time {now}"
                )
            self._schedule(event, start)

    def _schedule(self, event: FaultEvent, start: float) -> None:
        sim = self._sim
        if isinstance(event, LossRegime):
            sim.schedule_at(start, lambda e=event: self._apply_loss(e))
        elif isinstance(event, DelayRegime):
            sim.schedule_at(start, lambda e=event: self._apply_delay(e))
        elif isinstance(event, Partition):
            end = event.start + event.duration
            sim.schedule_at(start, lambda: self._begin_partition(start, end))
            sim.schedule_at(end, self._end_partition)
        elif isinstance(event, Duplication):
            end = event.start + event.duration
            sim.schedule_at(
                start, lambda e=event: self._begin_duplication(e, start, end)
            )
            sim.schedule_at(end, self._end_duplication)
        elif isinstance(event, Reordering):
            end = event.start + event.duration
            sim.schedule_at(
                start, lambda e=event: self._begin_reordering(e, start, end)
            )
            sim.schedule_at(end, self._end_reordering)
        elif isinstance(event, ClockJump):
            sim.schedule_at(start, lambda e=event: self._apply_jump(e))
        elif isinstance(event, DriftOnset):
            sim.schedule_at(start, lambda e=event: self._apply_drift(e))
        elif isinstance(event, Stall):
            # Stalls act through the sender's send gate (installed at
            # construction from the scenario); the engine only records
            # and reports them.
            end = event.start + event.duration
            sim.schedule_at(start, lambda e=event: self._begin_stall(e, start, end))
            sim.schedule_at(end, self._end_stall)
        else:  # pragma: no cover - FaultScenario validated the types
            raise InvalidParameterError(f"unknown fault event {event!r}")

    # ------------------------------------------------------------------ #
    # Event appliers
    # ------------------------------------------------------------------ #

    def _apply_loss(self, event: LossRegime) -> None:
        self._link.set_conditions(loss_probability=event.loss_probability)
        now = self._sim.now
        self.timeline.add(
            FaultWindow(
                now, now, "loss_regime", f"p_L={event.loss_probability:g}"
            )
        )
        self._emit("loss_regime", 0)

    def _apply_delay(self, event: DelayRegime) -> None:
        self._link.set_conditions(delay=event.delay)
        now = self._sim.now
        self.timeline.add(
            FaultWindow(now, now, "delay_regime", repr(event.delay))
        )
        self._emit("delay_regime", 0)

    def _begin_partition(self, start: float, end: float) -> None:
        self._link.begin_partition()
        self.timeline.add(FaultWindow(start, end, "partition"))
        self._emit("partition", +1)

    def _end_partition(self) -> None:
        self._link.end_partition()
        self._emit("partition", -1)

    def _begin_duplication(
        self, event: Duplication, start: float, end: float
    ) -> None:
        self._link.set_duplication(event.probability, event.lag, event.jitter)
        self.timeline.add(
            FaultWindow(
                start, end, "duplication", f"p={event.probability:g}"
            )
        )
        self._emit("duplication", +1)

    def _end_duplication(self) -> None:
        self._link.clear_duplication()
        self._emit("duplication", -1)

    def _begin_reordering(
        self, event: Reordering, start: float, end: float
    ) -> None:
        self._link.set_reordering(event.probability, event.extra_delay)
        self.timeline.add(
            FaultWindow(
                start, end, "reordering", f"p={event.probability:g}"
            )
        )
        self._emit("reordering", +1)

    def _end_reordering(self) -> None:
        self._link.clear_reordering()
        self._emit("reordering", -1)

    def _apply_jump(self, event: ClockJump) -> None:
        clock = self._clocks[event.target]
        clock.jump(self._sim.now, event.offset)
        now = self._sim.now
        self.timeline.add(
            FaultWindow(
                now, now, "clock_jump", f"{event.target}{event.offset:+g}"
            )
        )
        self._emit("clock_jump", 0)

    def _apply_drift(self, event: DriftOnset) -> None:
        clock = self._clocks[event.target]
        clock.set_drift(self._sim.now, event.drift)
        now = self._sim.now
        self.timeline.add(
            FaultWindow(
                now, now, "drift_onset", f"{event.target} {event.drift:+g}"
            )
        )
        self._emit("drift_onset", 0)

    def _begin_stall(self, event: Stall, start: float, end: float) -> None:
        self.timeline.add(FaultWindow(start, end, "stall"))
        self._emit("stall", +1)

    def _end_stall(self) -> None:
        self._emit("stall", -1)
