"""Deterministic fault injection for the failure-detector simulations.

The paper's analysis (§3.1, Theorem 5) assumes i.i.d. message loss,
i.i.d. delays, no duplication, no clock faults, and a never-pausing
sender.  This package scripts violations of each assumption onto a
running simulation — reproducibly, from dedicated seeded streams — so
the experiments can chart QoS degradation against the analytic
fault-free prediction:

* :mod:`repro.faults.links` — Gilbert–Elliott bursty loss; a wrapper
  link adding partitions, duplication, and reordering;
* :mod:`repro.faults.scenario` — timed fault events, the canonical
  scenario container, and the engine that compiles a scenario onto the
  discrete-event simulator (with telemetry + a queryable timeline);
* :mod:`repro.faults.runner` — failure-free runs through the fault
  pipeline (bit-identical to the plain runner when fault-free), the
  deterministic parallel fan-out, and per-fault-window QoS segmentation.
"""

from repro.faults.links import FaultyLink, GilbertElliottLink
from repro.faults.runner import (
    FaultRunResult,
    run_failure_free_with_faults,
    run_fault_runs_parallel,
    windowed_suspicion,
)
from repro.faults.scenario import (
    ClockJump,
    DelayRegime,
    DriftOnset,
    Duplication,
    FaultEvent,
    FaultScenario,
    FaultTimeline,
    FaultWindow,
    LossRegime,
    Partition,
    Reordering,
    ScenarioEngine,
    Stall,
)

__all__ = [
    "GilbertElliottLink",
    "FaultyLink",
    "LossRegime",
    "DelayRegime",
    "Partition",
    "Duplication",
    "Reordering",
    "ClockJump",
    "DriftOnset",
    "Stall",
    "FaultEvent",
    "FaultScenario",
    "FaultTimeline",
    "FaultWindow",
    "ScenarioEngine",
    "FaultRunResult",
    "run_failure_free_with_faults",
    "run_fault_runs_parallel",
    "windowed_suspicion",
]
