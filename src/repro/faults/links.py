"""Link models that violate the paper's §3.1 message-independence.

Theorem 5's closed form rests on i.i.d. Bernoulli loss and i.i.d.
delays.  Real networks lose messages in *bursts* (congestion, route
flaps) and occasionally duplicate or reorder them — exactly the
behaviours this module scripts so the experiments can measure how far
each detector's QoS departs from the analytic prediction when the
assumptions do.

* :class:`GilbertElliottLink` — the classic two-state Markov loss model
  (good/bad channel states with per-state loss probabilities), a
  drop-in replacement for :class:`~repro.net.link.LossyLink` in the
  discrete-event simulator.  :meth:`GilbertElliottLink.from_average`
  builds a bursty link with the *same average loss rate* as an i.i.d.
  one, which is what makes burst-vs-i.i.d. comparisons fair.
* :class:`FaultyLink` — a wrapper adding scripted partitions (loss→1
  windows), duplication, and reordering on top of any base link, with a
  *separate* fault RNG stream so that a run with no active fault
  windows consumes zero fault randomness and is bit-identical to the
  unwrapped run.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.net.delays import DelayDistribution
from repro.net.link import LinkStats, MessageRecord

__all__ = ["GilbertElliottLink", "FaultyLink"]


class GilbertElliottLink:
    """Two-state Markov (Gilbert–Elliott) loss with i.i.d. delays.

    The channel is in a *good* or *bad* state; message ``i`` is dropped
    with the current state's loss probability, then the state makes one
    Markov step.  Sojourn times are geometric: the mean burst (bad
    sojourn) length is ``1/p_bg`` messages.

    Args:
        delay: delay distribution for delivered messages.
        p_good: loss probability in the good state.
        p_bad: loss probability in the bad state.
        p_gb: per-message transition probability good → bad.
        p_bg: per-message transition probability bad → good.
        rng: seeded generator; the initial state is drawn from the
            stationary distribution so the loss process is stationary
            from the first message.
    """

    def __init__(
        self,
        delay: DelayDistribution,
        p_good: float,
        p_bad: float,
        p_gb: float,
        p_bg: float,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        for label, value in (
            ("p_good", p_good),
            ("p_bad", p_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise InvalidParameterError(
                    f"{label} must be in [0, 1], got {value}"
                )
        for label, value in (("p_gb", p_gb), ("p_bg", p_bg)):
            if not 0.0 < value <= 1.0:
                raise InvalidParameterError(
                    f"{label} must be in (0, 1] (both states must be "
                    f"reachable), got {value}"
                )
        self._delay = delay
        self._p_good = float(p_good)
        self._p_bad = float(p_bad)
        self._p_gb = float(p_gb)
        self._p_bg = float(p_bg)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._bad = bool(self._rng.random() < self.stationary_bad)
        self._stats = LinkStats(self.stationary_loss_rate)

    @classmethod
    def from_average(
        cls,
        delay: DelayDistribution,
        average_loss: float,
        burst_length: float,
        p_bad: float = 1.0,
        p_good: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> "GilbertElliottLink":
        """A bursty link matched to an i.i.d. link's average loss rate.

        ``average_loss`` pins the stationary loss rate and
        ``burst_length`` the mean bad-state sojourn (in messages); the
        transition probabilities follow from
        ``π_bad = (avg − p_good) / (p_bad − p_good)``, ``p_bg =
        1/burst_length`` and the stationarity balance
        ``π_good·p_gb = π_bad·p_bg``.
        """
        if burst_length < 1.0:
            raise InvalidParameterError(
                f"burst_length must be >= 1 message, got {burst_length}"
            )
        if not p_good <= average_loss < p_bad:
            raise InvalidParameterError(
                f"average_loss must lie in [p_good, p_bad) = "
                f"[{p_good}, {p_bad}), got {average_loss}"
            )
        pi_bad = (average_loss - p_good) / (p_bad - p_good)
        p_bg = 1.0 / float(burst_length)
        if pi_bad >= 1.0:
            raise InvalidParameterError(
                f"average_loss {average_loss} requires the channel to be "
                f"always-bad"
            )
        p_gb = pi_bad * p_bg / (1.0 - pi_bad)
        if p_gb > 1.0:
            raise InvalidParameterError(
                f"no Gilbert-Elliott chain matches average_loss="
                f"{average_loss} with burst_length={burst_length} "
                f"(p_gb={p_gb:.3g} > 1); use a longer burst"
            )
        return cls(
            delay=delay,
            p_good=p_good,
            p_bad=p_bad,
            p_gb=p_gb,
            p_bg=p_bg,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # Closed-form channel properties
    # ------------------------------------------------------------------ #

    @property
    def stationary_bad(self) -> float:
        """``π_bad = p_gb / (p_gb + p_bg)``."""
        return self._p_gb / (self._p_gb + self._p_bg)

    @property
    def stationary_loss_rate(self) -> float:
        """``π_good·p_good + π_bad·p_bad`` — the long-run loss rate."""
        pi_bad = self.stationary_bad
        return (1.0 - pi_bad) * self._p_good + pi_bad * self._p_bad

    @property
    def mean_burst_length(self) -> float:
        """Mean bad-state sojourn, ``1/p_bg`` messages."""
        return 1.0 / self._p_bg

    @property
    def transition_probabilities(self) -> Tuple[float, float]:
        """``(p_gb, p_bg)``."""
        return (self._p_gb, self._p_bg)

    @property
    def state_loss_probabilities(self) -> Tuple[float, float]:
        """``(p_good, p_bad)``."""
        return (self._p_good, self._p_bad)

    # ------------------------------------------------------------------ #
    # LossyLink-compatible surface
    # ------------------------------------------------------------------ #

    @property
    def delay_distribution(self) -> DelayDistribution:
        return self._delay

    @property
    def loss_probability(self) -> float:
        """The *average* loss rate (what an i.i.d. link would be told)."""
        return self.stationary_loss_rate

    @property
    def in_bad_state(self) -> bool:
        return self._bad

    @property
    def stats(self) -> LinkStats:
        return self._stats

    def _step_fate(self) -> bool:
        """One message's fate: loss draw in the current state, then one
        Markov transition.  Always two uniform draws per message, so the
        stream layout is independent of the realized path."""
        p = self._p_bad if self._bad else self._p_good
        lost = bool(self._rng.random() < p)
        r = self._rng.random()
        if self._bad:
            if r < self._p_bg:
                self._bad = False
        else:
            if r < self._p_gb:
                self._bad = True
        return lost

    def transmit(self, seq: int, send_time: float) -> MessageRecord:
        """Decide the fate of one message sent at ``send_time``."""
        if self._step_fate():
            self._stats.record(dropped=True)
            return MessageRecord(seq=seq, send_time=send_time, delay=math.inf)
        delay = float(self._delay.sample(self._rng, 1)[0])
        self._stats.record(dropped=False)
        return MessageRecord(seq=seq, send_time=send_time, delay=delay)

    def transmit_batch(self, n: int) -> np.ndarray:
        """Fates of ``n`` consecutive messages (lost ⇒ ``+inf`` delay).

        Same draw order as ``n`` calls to :meth:`transmit`, so the two
        paths produce identical fate sequences for the same generator
        state.
        """
        if n < 0:
            raise InvalidParameterError(f"n must be >= 0, got {n}")
        out = np.empty(n, dtype=float)
        n_lost = 0
        for i in range(n):
            if self._step_fate():
                out[i] = math.inf
                n_lost += 1
            else:
                out[i] = float(self._delay.sample(self._rng, 1)[0])
        self._stats.record_batch(offered=n, dropped=n_lost)
        return out


class FaultyLink:
    """Scripted partitions, duplication, and reordering over a base link.

    The wrapper is transparent when no fault window is active: exactly
    one base-link ``transmit`` per message and **zero** draws from the
    fault RNG, so a run with an empty scenario is bit-identical to a run
    on the bare base link.  The fault RNG is a separate namespaced
    stream (``STREAM_FAULTS``), so enabling a fault window perturbs only
    the fault draws — the base link's loss/delay stream is untouched.

    Draw order inside an active window is fixed (reorder draw, then
    duplication draws) and documented so scenario replays are
    reproducible by construction.
    """

    def __init__(self, base, fault_rng: np.random.Generator) -> None:
        self._base = base
        self._rng = fault_rng
        self._partition_depth = 0
        # (probability, lag, jitter) / (probability, extra_delay)
        self._dup: Optional[Tuple[float, float, float]] = None
        self._reorder: Optional[Tuple[float, float]] = None
        self.partition_dropped = 0
        self.duplicated = 0
        self.reordered = 0

    # ------------------------------------------------------------------ #
    # Base-link delegation
    # ------------------------------------------------------------------ #

    @property
    def base(self):
        return self._base

    @property
    def delay_distribution(self) -> DelayDistribution:
        return self._base.delay_distribution

    @property
    def loss_probability(self) -> float:
        return self._base.loss_probability

    @property
    def stats(self) -> LinkStats:
        return self._base.stats

    def set_conditions(self, **kwargs) -> None:
        set_conditions = getattr(self._base, "set_conditions", None)
        if set_conditions is None:
            raise InvalidParameterError(
                f"base link {type(self._base).__name__} does not support "
                f"regime changes (set_conditions)"
            )
        set_conditions(**kwargs)

    # ------------------------------------------------------------------ #
    # Fault-window toggles (driven by the scenario engine)
    # ------------------------------------------------------------------ #

    @property
    def partitioned(self) -> bool:
        return self._partition_depth > 0

    def begin_partition(self) -> None:
        self._partition_depth += 1

    def end_partition(self) -> None:
        if self._partition_depth <= 0:
            raise InvalidParameterError("end_partition without a partition")
        self._partition_depth -= 1

    def set_duplication(
        self, probability: float, lag: float, jitter: float
    ) -> None:
        self._dup = (float(probability), float(lag), float(jitter))

    def clear_duplication(self) -> None:
        self._dup = None

    def set_reordering(self, probability: float, extra_delay: float) -> None:
        self._reorder = (float(probability), float(extra_delay))

    def clear_reordering(self) -> None:
        self._reorder = None

    # ------------------------------------------------------------------ #
    # Transmission
    # ------------------------------------------------------------------ #

    def transmit(self, seq: int, send_time: float) -> MessageRecord:
        """Single-record fate (duplicates, if any, are discarded)."""
        return self.transmit_multi(seq, send_time)[0]

    def transmit_multi(
        self, seq: int, send_time: float
    ) -> Tuple[MessageRecord, ...]:
        """Fate(s) of one offered message: primary record first, then
        any duplicate copies the fault layer injected."""
        if self._partition_depth > 0:
            # The link is cut: certain loss, no base or fault draws.
            # Offered/dropped still count toward the link's epoch stats
            # (during a partition the observed loss rate *is* 1).
            self._base.stats.record(dropped=True)
            self.partition_dropped += 1
            return (
                MessageRecord(seq=seq, send_time=send_time, delay=math.inf),
            )
        record = self._base.transmit(seq, send_time)
        if record.lost:
            return (record,)
        records: List[MessageRecord] = [record]
        if self._reorder is not None:
            probability, extra_delay = self._reorder
            if self._rng.random() < probability:
                records[0] = MessageRecord(
                    seq=seq,
                    send_time=send_time,
                    delay=record.delay + extra_delay,
                )
                self.reordered += 1
        if self._dup is not None:
            probability, lag, jitter = self._dup
            if self._rng.random() < probability:
                extra = lag + (jitter * self._rng.random() if jitter > 0 else 0.0)
                records.append(
                    MessageRecord(
                        seq=seq,
                        send_time=send_time,
                        delay=records[0].delay + extra,
                    )
                )
                self.duplicated += 1
        return tuple(records)
