"""Failure-free runs with scripted faults, serial and parallel.

:func:`run_failure_free_with_faults` mirrors
:func:`repro.sim.runner.run_failure_free` exactly — same RNG stream
(``STREAM_FAILURE_FREE`` by run index), same construction order, same
event scheduling — and layers the fault pipeline on top.  With
``scenario=None`` (or an empty scenario) the fault layer consumes zero
fault randomness and the result is **bit-identical** to the plain
runner; that equality is what the conformance tests pin.

Fault randomness (duplication/reordering draws) comes from the separate
``STREAM_FAULTS`` stream, also keyed by run index, so runs stay
independent and the fan-out over worker processes
(:func:`run_fault_runs_parallel`) is bit-identical to serial for any
job count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.faults.links import FaultyLink
from repro.faults.scenario import FaultScenario, FaultWindow, ScenarioEngine
from repro.metrics.qos import estimate_accuracy
from repro.metrics.transitions import SUSPECT, OutputTrace
from repro.net.clocks import Clock, FaultableClock
from repro.net.link import LossyLink
from repro.sim.engine import Simulator
from repro.sim.heartbeat import HeartbeatSender
from repro.sim.monitor import DetectorHost
from repro.sim.parallel import parallel_map
from repro.sim.runner import (
    DetectorFactory,
    FailureFreeResult,
    SimulationConfig,
)
from repro.sim.seeds import STREAM_FAILURE_FREE, STREAM_FAULTS, derive_rng

__all__ = [
    "FaultRunResult",
    "LinkFactory",
    "run_failure_free_with_faults",
    "run_fault_runs_parallel",
    "windowed_suspicion",
]

#: Builds the base link for one run from that run's seeded generator —
#: the hook that swaps the i.i.d. ``LossyLink`` for a Gilbert–Elliott
#: (or any other) channel model.
LinkFactory = Callable[[np.random.Generator], object]


@dataclass
class FaultRunResult(FailureFreeResult):
    """A :class:`~repro.sim.runner.FailureFreeResult` plus the fault
    timeline the run activated and the fault layer's own counters."""

    fault_windows: Tuple[FaultWindow, ...] = ()
    partition_dropped: int = 0
    duplicated: int = 0
    reordered: int = 0


def _resolve_clock(
    configured: Optional[Clock], scenario: Optional[FaultScenario], target: str
) -> Optional[Clock]:
    """The clock to build the pipeline with: auto-upgrade ``None`` to a
    :class:`FaultableClock` when the scenario scripts faults for it."""
    if scenario is None or not scenario.needs_faultable_clock(target):
        return configured
    if configured is None:
        return FaultableClock()
    if not isinstance(configured, FaultableClock):
        raise InvalidParameterError(
            f"scenario scripts {target} clock faults but the configured "
            f"{target} clock is {type(configured).__name__}; pass a "
            f"FaultableClock (or None to get one automatically)"
        )
    return configured


def run_failure_free_with_faults(
    detector_factory: DetectorFactory,
    config: SimulationConfig,
    scenario: Optional[FaultScenario] = None,
    link_factory: Optional[LinkFactory] = None,
    run_index: int = 0,
) -> FaultRunResult:
    """One failure-free run with an optional fault scenario installed.

    Args:
        detector_factory: builds a fresh detector for this run.
        config: the shared simulation parameters; ``config.delay`` /
            ``config.loss_probability`` configure the base link unless
            ``link_factory`` overrides it.
        scenario: the fault script; ``None`` or an empty scenario makes
            this call bit-identical to
            :func:`repro.sim.runner.run_failure_free`.
        link_factory: optional base-link builder ``rng -> link`` (e.g. a
            :class:`~repro.faults.links.GilbertElliottLink`); receives
            the run's main stream so link fates stay on the same stream
            the plain runner uses.
        run_index: index of this run within the experiment (keys both
            RNG streams).
    """
    rng = derive_rng(config.seed, STREAM_FAILURE_FREE, run_index)
    fault_rng = derive_rng(config.seed, STREAM_FAULTS, run_index)
    detector = detector_factory()
    sim = Simulator()
    if link_factory is not None:
        base_link = link_factory(rng)
    else:
        base_link = LossyLink(
            delay=config.delay,
            loss_probability=config.loss_probability,
            rng=rng,
        )
    link = FaultyLink(base_link, fault_rng)
    sender_clock = _resolve_clock(config.sender_clock, scenario, "sender")
    monitor_clock = _resolve_clock(config.monitor_clock, scenario, "monitor")
    host = DetectorHost(
        sim, detector, clock=monitor_clock, sender_clock=sender_clock
    )
    sender = HeartbeatSender(
        sim,
        link,
        eta=config.eta,
        deliver=host.deliver,
        clock=sender_clock,
        crash_time=None,
        send_gate=scenario.send_gate() if scenario is not None else None,
    )
    engine: Optional[ScenarioEngine] = None
    if scenario is not None and len(scenario):
        engine = ScenarioEngine(
            sim,
            scenario,
            link,
            sender_clock=sender_clock,
            monitor_clock=monitor_clock,
        )
        engine.install()
    host.start()
    sender.start()
    sim.run_until(config.horizon)
    trace = host.finish()
    accuracy = estimate_accuracy(trace, warmup=config.warmup)
    return FaultRunResult(
        trace=trace,
        accuracy=accuracy,
        heartbeats_sent=sender.sent_count,
        heartbeats_delivered=host.delivered_count,
        fault_windows=(
            engine.timeline.windows if engine is not None else ()
        ),
        partition_dropped=link.partition_dropped,
        duplicated=link.duplicated,
        reordered=link.reordered,
    )


def run_fault_runs_parallel(
    detector_factory: DetectorFactory,
    config: SimulationConfig,
    n_runs: int,
    scenario: Optional[FaultScenario] = None,
    link_factory: Optional[LinkFactory] = None,
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> list:
    """``n_runs`` independent fault runs fanned out over workers.

    Each run's streams are keyed by its absolute index, so the result
    list is bit-identical for every ``jobs``/``chunk_size`` value
    (including the in-process serial fallback).
    """
    if n_runs < 1:
        raise InvalidParameterError(f"n_runs must be >= 1, got {n_runs}")
    return parallel_map(
        lambda i: run_failure_free_with_faults(
            detector_factory,
            config,
            scenario=scenario,
            link_factory=link_factory,
            run_index=i,
        ),
        range(n_runs),
        jobs=jobs,
        chunk_size=chunk_size,
    )


def windowed_suspicion(
    trace: OutputTrace, windows: Sequence[FaultWindow]
) -> list:
    """Fraction of each window's span the detector spent suspecting.

    This is the per-fault-window QoS segmentation: ``1 − P_A``
    restricted to the window (instant windows report the output *at*
    that instant: 1.0 for S, 0.0 for T).  Returns ``(window, fraction)``
    pairs in timeline order.
    """
    out = []
    for window in windows:
        if window.duration == 0.0:
            frac = 1.0 if trace.output_at(window.start) == SUSPECT else 0.0
            out.append((window, frac))
            continue
        start = max(window.start, trace.start_time)
        end = min(window.end, trace.end_time)
        if end <= start:
            out.append((window, float("nan")))
            continue
        suspected = 0.0
        # Walk the right-continuous output history across [start, end).
        current = trace.output_at(start)
        cursor = start
        for transition in trace.transitions:
            if transition.time <= start:
                continue
            if transition.time >= end:
                break
            if current == SUSPECT:
                suspected += transition.time - cursor
            cursor = transition.time
            current = transition.kind.new_output
        if current == SUSPECT:
            suspected += end - cursor
        out.append((window, suspected / (end - start)))
    return out
