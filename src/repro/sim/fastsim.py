"""Vectorized failure-detector simulators for benchmark-scale statistics.

The paper's Fig. 12 measures ``E(T_MR)`` over 500 mistake-recurrence
intervals per point.  At ``T_D^U = 3.5`` (η = 1, p_L = 0.01, exponential
delays with mean 0.02) the analytic ``E(T_MR)`` is ≈ 10⁶ heartbeat
periods, so one point needs ≈ 5·10⁸ simulated heartbeats — far beyond an
event-driven loop in Python.  This module exploits structural properties
of each algorithm to reduce a whole run to a handful of NumPy passes:

**NFD-S** (Proposition 13): within window ``[τ_i, τ_{i+1})`` only
messages ``m_i … m_{i+k}`` matter, so the entire output trace is a
function of the *windowed minimum* ``F_i = min(A_i, …, A_{i+k})`` of the
arrival-time vector (``A_j = j·η + d_j``, ``∞`` for lost messages):

* q trusts during window i from ``max(τ_i, F_i)`` (if ``F_i < τ_{i+1}``);
* an S-transition occurs at ``τ_i`` iff ``F_{i-1} < τ_i ≤ F_i``
  (trusting just before ``τ_i``, nothing fresh at ``τ_i``);
* the mistake starting at ``τ_i`` ends at ``F_m`` for the first
  ``m ≥ i`` with ``F_m < τ_{m+1}``.

**NFD-U / NFD-E**: the output between consecutive *effective* receipts
(messages advancing the max sequence number ℓ) is fully determined by the
receipt time ``t_m`` and the freshness point ``τ_m`` computed at that
receipt — for NFD-U a constant shift, for NFD-E the eq. (6.3) rolling
mean over the last n effective receipts.

**SFD** (fixed timeout TO restarted on every accepted receipt, optional
cutoff c): with identical timeouts, the expiry deadline is a running
maximum, so suspicion periods are exactly the gaps ``> TO`` in the sorted
accepted arrival times.

All simulators stream in chunks with O(chunk) memory, carry exact state
across chunk boundaries (running max ℓ, open mistakes, rolling windows),
and stop after ``target_mistakes`` S-transitions or ``max_heartbeats``.
They are cross-validated against the event-driven implementations in
``tests/sim/test_fastsim_vs_engine.py``.
"""

from __future__ import annotations

import math
import time
import weakref
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import InvalidParameterError
from repro.net.delays import DelayDistribution
from repro.telemetry.runtime import active as _telemetry_active

__all__ = [
    "FastAccuracyResult",
    "simulate_nfds_fast",
    "simulate_nfdu_fast",
    "simulate_nfde_fast",
    "simulate_sfd_fast",
]


@dataclass
class FastAccuracyResult:
    """Accuracy statistics from one vectorized failure-free run.

    ``e_tmr``/``e_tm`` are NaN when no (or not enough) mistakes were
    observed — which for large ``T_D^U`` is itself the headline result.
    """

    algorithm: str
    n_heartbeats: int
    total_time: float
    suspect_time: float
    s_transition_times: np.ndarray
    mistake_durations: np.ndarray
    truncated: bool  # hit max_heartbeats before target_mistakes

    @property
    def n_mistakes(self) -> int:
        return int(self.s_transition_times.size)

    @property
    def tmr_samples(self) -> np.ndarray:
        return np.diff(self.s_transition_times)

    @property
    def e_tmr(self) -> float:
        samples = self.tmr_samples
        return float(samples.mean()) if samples.size else math.nan

    @property
    def e_tm(self) -> float:
        if self.mistake_durations.size == 0:
            return math.nan
        return float(self.mistake_durations.mean())

    @property
    def query_accuracy(self) -> float:
        if self.total_time <= 0:
            return math.nan
        return 1.0 - self.suspect_time / self.total_time

    @property
    def mistake_rate(self) -> float:
        if self.total_time <= 0:
            return math.nan
        return self.n_mistakes / self.total_time


def _kernel_timer() -> Optional[float]:
    """Start-of-kernel timestamp, or ``None`` when telemetry is off.

    The disabled path is a single global read per *kernel call* (not per
    heartbeat), which is what keeps the instrumented-off overhead under
    the perf-trajectory budget.
    """
    return time.perf_counter() if _telemetry_active() is not None else None


# Metric handles per (registry, algorithm): the registry lookup formats
# a label string on every call, which is most of the recording cost on a
# kernel that finishes in a millisecond.  Weak keys let a discarded
# registry (and its cache entry) be collected normally.
_KERNEL_METRICS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _record_kernel(result: "FastAccuracyResult", t0: Optional[float]) -> None:
    """Record one kernel run into the active registry (if any)."""
    reg = _telemetry_active()
    if reg is None or t0 is None:
        return
    cache = _KERNEL_METRICS.get(reg)
    if cache is None:
        cache = _KERNEL_METRICS[reg] = {}
    handles = cache.get(result.algorithm)
    if handles is None:
        labels = {"algorithm": result.algorithm}
        handles = cache[result.algorithm] = (
            reg.counter("fastsim_runs_total", labels=labels),
            reg.counter("fastsim_heartbeats_total", labels=labels),
            reg.counter("fastsim_mistakes_total", labels=labels),
            reg.histogram("fastsim_run_seconds", labels=labels),
        )
    runs, heartbeats, mistakes, seconds = handles
    runs.inc()
    heartbeats.inc(result.n_heartbeats)
    mistakes.inc(result.n_mistakes)
    seconds.observe(time.perf_counter() - t0)


def _validate_common(
    eta: float,
    loss_probability: float,
    target_mistakes: int,
    max_heartbeats: int,
    warmup: float = 0.0,
) -> None:
    if eta <= 0:
        raise InvalidParameterError(f"eta must be positive, got {eta}")
    if not 0.0 <= loss_probability < 1.0:
        raise InvalidParameterError(
            f"loss_probability must be in [0,1), got {loss_probability}"
        )
    if target_mistakes < 1:
        raise InvalidParameterError(
            f"target_mistakes must be >= 1, got {target_mistakes}"
        )
    if max_heartbeats < 1:
        raise InvalidParameterError(
            f"max_heartbeats must be >= 1, got {max_heartbeats}"
        )
    if warmup < 0:
        raise InvalidParameterError(f"warmup must be >= 0, got {warmup}")


def _draw_arrivals(
    delay: DelayDistribution,
    loss_probability: float,
    rng: np.random.Generator,
    seqs: np.ndarray,
    eta: float,
) -> np.ndarray:
    """Arrival times ``A_j = j·η + d_j`` with ``∞`` for lost messages.

    ``seqs`` may be any numeric dtype; the product with the float ``eta``
    promotes element-wise, so passing the int64 sequence vector directly
    avoids an extra float copy per chunk.
    """
    d = delay.sample(rng, seqs.size).astype(float, copy=False)
    if loss_probability > 0.0:
        lost = rng.random(seqs.size) < loss_probability
        d = np.where(lost, np.inf, d)
    return seqs * eta + d


def _merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two individually sorted arrays into one sorted array.

    A stable mergesort on the concatenation detects the two pre-sorted
    runs and merges them in O(n), so callers that keep their buffers
    sorted never pay for a full re-sort.
    """
    if a.size == 0:
        return b
    if b.size == 0:
        return a
    out = np.concatenate([a, b])
    out.sort(kind="stable")
    return out


# --------------------------------------------------------------------- #
# NFD-S
# --------------------------------------------------------------------- #


def simulate_nfds_fast(
    eta: float,
    delta: float,
    loss_probability: float,
    delay: DelayDistribution,
    seed: int = 0,
    target_mistakes: int = 500,
    max_heartbeats: int = 200_000_000,
    chunk_size: int = 4_000_000,
    warmup: float = 0.0,
) -> FastAccuracyResult:
    """Failure-free NFD-S run until ``target_mistakes`` S-transitions.

    Measurement starts at the first freshness point ``τ_1`` (NFD-S is in
    steady state from there, Section 3.2) or, if later, at the first
    freshness point ``≥ warmup`` — the arrivals before it still seed the
    windowed minimum, they are just excluded from the accounting.
    """
    _validate_common(
        eta, loss_probability, target_mistakes, max_heartbeats, warmup
    )
    if delta < 0:
        raise InvalidParameterError(f"delta must be >= 0, got {delta}")
    t0 = _kernel_timer()
    rng = np.random.default_rng(seed)
    k = int(math.ceil(delta / eta - 1e-12))
    warming = warmup > 0.0

    s_times: List[np.ndarray] = []
    durations: List[np.ndarray] = []
    n_s = 0
    suspect_time = 0.0
    windows_done = 0

    # Carries across chunks.
    carry_arrivals = np.empty(0, dtype=float)  # A for trailing k seqs
    carry_start_seq = 1  # seq of carry_arrivals[0] (when non-empty)
    prev_f: Optional[float] = None  # F_{i-1} of the first window this chunk
    open_mistake_start: Optional[float] = None
    heartbeats = 0
    truncated = False

    while n_s < target_mistakes:
        if heartbeats >= max_heartbeats:
            truncated = True
            break
        draw = int(min(chunk_size, max_heartbeats - heartbeats))
        # The run needs k+1 arrivals in total before any window can form;
        # top up the draw only to reach that floor (the single case allowed
        # past max_heartbeats, when the cap itself is < k+1), so the final
        # chunk never overshoots the documented heartbeat budget.
        if heartbeats + draw < k + 1:
            draw = (k + 1) - heartbeats
        first_new = carry_start_seq + carry_arrivals.size
        new_seqs = np.arange(first_new, first_new + draw, dtype=float)
        new_arrivals = _draw_arrivals(
            delay, loss_probability, rng, new_seqs, eta
        )
        heartbeats += draw
        arrivals = np.concatenate([carry_arrivals, new_arrivals])
        start_seq = carry_start_seq

        m = arrivals.size - k  # windows computable: i = start_seq .. +m-1
        if m <= 0:
            carry_arrivals = arrivals
            continue
        # Carries for the next chunk are fixed by the *full* window count,
        # before any warmup trimming below.
        next_carry_arrivals = arrivals[m:].copy()
        next_carry_start_seq = start_seq + m
        f = arrivals[:m].copy()
        for j in range(1, k + 1):
            np.minimum(f, arrivals[j : j + m], out=f)

        idx = np.arange(start_seq, start_seq + m, dtype=float)
        tau = idx * eta + delta
        tau_next = tau + eta

        # Steady-state guard: drop leading windows whose freshness point
        # precedes the warmup (their arrivals still feed the windowed
        # minimum via prev_f, so the first retained window joins the
        # stream mid-steady-state rather than at a fake cold start).
        if warming:
            nskip = int(np.searchsorted(tau, warmup, side="left"))
            if nskip >= m:
                carry_arrivals = next_carry_arrivals
                carry_start_seq = next_carry_start_seq
                prev_f = float(f[-1])
                continue
            if nskip:
                prev_f = float(f[nskip - 1])
                f = f[nskip:]
                tau = tau[nskip:]
                tau_next = tau_next[nskip:]
                m -= nskip
            warming = False

        # Suspect time per window: from τ_i until trust (capped at τ_{i+1}).
        suspect_time += float(
            np.sum(np.clip(np.minimum(f, tau_next) - tau, 0.0, eta))
        )
        windows_done += m

        # S-transitions at τ_i: trusted just before (F_{i-1} < τ_i) and no
        # fresh message at τ_i (F_i > τ_i).
        f_prev = np.empty(m, dtype=float)
        f_prev[1:] = f[:-1]
        if prev_f is None:
            # Before τ_1 the output is S by initialization, so no
            # S-transition can occur at τ_1 itself.
            f_prev[0] = np.inf
        else:
            f_prev[0] = prev_f
        s_mask = (f > tau) & (f_prev < tau)
        s_local = np.nonzero(s_mask)[0]

        # Trust-resumption windows: F_m < τ_{m+1}.
        g_local = np.nonzero(f < tau_next)[0]

        # Close a mistake carried from the previous chunk.
        if open_mistake_start is not None and g_local.size:
            end = float(f[g_local[0]])
            durations.append(
                np.array([end - open_mistake_start], dtype=float)
            )
            open_mistake_start = None

        if s_local.size:
            pos = np.searchsorted(g_local, s_local, side="left")
            closed = pos < g_local.size
            closed_idx = s_local[closed]
            ends = f[g_local[pos[closed]]]
            durations.append(ends - tau[closed_idx])
            n_open = int((~closed).sum())
            if n_open:
                # Only the *last* S-transition can be unresolved: any
                # earlier one is followed by a trust window before the
                # next S-transition, which would have closed it.
                open_mistake_start = float(tau[s_local[-1]])
            s_times.append(tau[s_local])
            n_s += int(s_local.size)

        # Prepare carries for the next chunk.
        carry_arrivals = next_carry_arrivals
        carry_start_seq = next_carry_start_seq
        prev_f = float(f[-1])

    all_s = (
        np.concatenate(s_times) if s_times else np.empty(0, dtype=float)
    )
    all_d = (
        np.concatenate(durations) if durations else np.empty(0, dtype=float)
    )
    result = FastAccuracyResult(
        algorithm="nfd-s",
        n_heartbeats=heartbeats,
        total_time=windows_done * eta,
        suspect_time=suspect_time,
        s_transition_times=all_s,
        mistake_durations=all_d,
        truncated=truncated,
    )
    _record_kernel(result, t0)
    return result


# --------------------------------------------------------------------- #
# NFD-U / NFD-E (shared interval machinery)
# --------------------------------------------------------------------- #


def _simulate_freshness_stream(
    algorithm: str,
    eta: float,
    alpha: float,
    loss_probability: float,
    delay: DelayDistribution,
    seed: int,
    target_mistakes: int,
    max_heartbeats: int,
    chunk_size: int,
    ea_offset: Optional[float],
    window: Optional[int],
    warmup: float = 0.0,
) -> FastAccuracyResult:
    """Common engine for NFD-U (``ea_offset`` known) and NFD-E (rolling).

    Works on the stream of *effective* receipts (sequence-number maxima
    in arrival order).  For each effective receipt ``(t_m, s_m)`` the
    next freshness point is

        NFD-U:  ``τ_m = (s_m + 1)·η + ea_offset + α``
        NFD-E:  ``τ_m = mean(last n normalized receipts) + (s_m+1)·η + α``

    and the output on ``[t_m, t_{m+1})`` is T on ``[t_m, τ_m)`` (when
    nonempty) and S on ``[max(t_m, τ_m), t_{m+1})``.

    ``warmup`` additionally drops effective receipts before that time
    from the accounting (they still feed the EA estimator), as a
    steady-state guard on top of the window-fill warmup.
    """
    _validate_common(
        eta, loss_probability, target_mistakes, max_heartbeats, warmup
    )
    t0 = _kernel_timer()
    rng = np.random.default_rng(seed)

    s_times: List[np.ndarray] = []
    durations: List[np.ndarray] = []
    n_s = 0
    suspect_time = 0.0
    total_time = 0.0

    heartbeats = 0
    next_seq = 1
    ell = 0  # running max sequence number received
    # Messages received but not yet *mature*: a message arriving after
    # the chunk's last send time may still be overtaken by arrivals from
    # the next chunk, so it is buffered until the boundary passes it.
    pend_seq = np.empty(0, dtype=np.int64)
    pend_t = np.empty(0, dtype=float)
    # Rolling normalized-receipt window for NFD-E (most recent last).
    norm_carry = np.empty(0, dtype=float)
    # Interval carried across chunks: last effective receipt + its τ.
    t_prev: Optional[float] = None
    tau_prev: Optional[float] = None
    open_mistake_start: Optional[float] = None
    # Warmup: skip accounting until the NFD-E window has filled once (for
    # NFD-U a single effective receipt suffices).
    warm_needed = window if window is not None else 1
    warm_seen = 0
    warming_time = warmup > 0.0
    truncated = False

    while n_s < target_mistakes:
        if heartbeats >= max_heartbeats:
            truncated = True
            break
        draw = int(min(chunk_size, max_heartbeats - heartbeats))
        seqs = np.arange(next_seq, next_seq + draw, dtype=np.int64)
        arrivals = _draw_arrivals(delay, loss_probability, rng, seqs, eta)
        next_seq += draw
        heartbeats += draw

        received = np.isfinite(arrivals)
        all_seq = np.concatenate([pend_seq, seqs[received]])
        all_t = np.concatenate([pend_t, arrivals[received]])
        # Only arrivals at or before this chunk's last send time are
        # final — later ones may interleave with the next chunk's
        # messages, so they stay pending.
        boundary = (next_seq - 1) * eta
        mature = all_t <= boundary
        pend_seq = all_seq[~mature]
        pend_t = all_t[~mature]
        r_seq = all_seq[mature]
        r_t = all_t[mature]
        if r_t.size == 0:
            continue
        # Arrival order (delays can reorder messages).
        order = np.argsort(r_t, kind="stable")
        r_seq = r_seq[order]
        r_t = r_t[order]
        # Effective receipts: sequence number exceeds everything before.
        cummax = np.maximum.accumulate(r_seq)
        eff = np.empty(r_seq.size, dtype=bool)
        eff[0] = r_seq[0] > ell
        eff[1:] = (r_seq[1:] == cummax[1:]) & (r_seq[1:] > cummax[:-1])
        if ell > 0:
            eff &= r_seq > ell
        e_seq = r_seq[eff]
        e_t = r_t[eff]
        if e_seq.size == 0:
            continue
        ell = int(e_seq[-1])

        # τ for each effective receipt.
        if ea_offset is not None:
            tau = (e_seq + 1) * eta + ea_offset + alpha
        else:
            assert window is not None
            norm = e_t - eta * e_seq.astype(float)
            full = np.concatenate([norm_carry, norm])
            csum = np.concatenate([[0.0], np.cumsum(full)])
            q = np.arange(norm_carry.size, full.size)
            w = np.minimum(window, q + 1)
            means = (csum[q + 1] - csum[q + 1 - w]) / w
            tau = means + (e_seq + 1) * eta + alpha
            keep = min(window, full.size)
            norm_carry = full[full.size - keep :]

        # Warmup: the first `warm_needed` effective receipts feed the
        # estimator but are excluded from accounting (steady-state guard).
        if warm_seen < warm_needed:
            take = min(warm_needed - warm_seen, int(e_t.size))
            warm_seen += take
            e_t = e_t[take:]
            tau = tau[take:]
            # Measurement (re)starts at the first retained receipt; any
            # pre-warm carry interval must not count.
            t_prev = None
            tau_prev = None
            if e_t.size == 0:
                continue

        # Time-based steady-state guard: drop receipts before `warmup`
        # (a prefix, since e_t is ascending); measurement restarts at the
        # first retained receipt.
        if warming_time:
            keep = e_t >= warmup
            if not bool(keep.all()):
                e_t = e_t[keep]
                tau = tau[keep]
                t_prev = None
                tau_prev = None
            if e_t.size == 0:
                continue
            warming_time = False

        # Build the interval stream: carry + this chunk's receipts.
        if t_prev is not None:
            ts = np.concatenate([[t_prev], e_t])
            taus = np.concatenate([[tau_prev], tau])
        else:
            ts = e_t
            taus = tau
        if ts.size < 2:
            t_prev = float(ts[-1])
            tau_prev = float(taus[-1])
            continue

        # Intervals [ts[m], ts[m+1]) with freshness point taus[m].
        t0 = ts[:-1]
        t1 = ts[1:]
        tq = taus[:-1]
        total_time += float(t1[-1] - t0[0])
        trust_at = tq > t0
        # Suspect time per interval.
        sus = np.where(
            trust_at, np.clip(t1 - np.maximum(tq, t0), 0.0, None), t1 - t0
        )
        suspect_time += float(np.sum(sus))

        # S-transitions: τ falls strictly inside a trusted interval.
        s_mask = trust_at & (tq < t1)
        s_local = np.nonzero(s_mask)[0]
        # Trust resumptions: interval m starts trusting.
        g_local = np.nonzero(trust_at)[0]

        if open_mistake_start is not None and g_local.size:
            end = float(t0[g_local[0]])
            durations.append(np.array([end - open_mistake_start]))
            open_mistake_start = None

        if s_local.size:
            # A mistake starting at τ_m (inside interval m) ends at the
            # first interval start m' > m with trust_at[m'].
            pos = np.searchsorted(g_local, s_local, side="right")
            closed = pos < g_local.size
            closed_idx = s_local[closed]
            ends = t0[g_local[pos[closed]]]
            durations.append(ends - tq[closed_idx])
            if (~closed).any():
                open_mistake_start = float(tq[s_local[-1]])
            s_times.append(tq[s_local])
            n_s += int(s_local.size)

        # Check the trailing partial interval [t_last, ?) next chunk; if
        # its τ already passed it will be suspect — handled next round.
        t_prev = float(ts[-1])
        tau_prev = float(taus[-1])
        # If currently suspect with a pending S-transition in the trailing
        # open interval, it will be detected when the interval closes.

    all_s = np.concatenate(s_times) if s_times else np.empty(0, dtype=float)
    all_d = (
        np.concatenate(durations) if durations else np.empty(0, dtype=float)
    )
    result = FastAccuracyResult(
        algorithm=algorithm,
        n_heartbeats=heartbeats,
        total_time=total_time,
        suspect_time=suspect_time,
        s_transition_times=all_s,
        mistake_durations=all_d,
        truncated=truncated,
    )
    _record_kernel(result, t0)
    return result


def simulate_nfdu_fast(
    eta: float,
    alpha: float,
    loss_probability: float,
    delay: DelayDistribution,
    ea_offset: Optional[float] = None,
    seed: int = 0,
    target_mistakes: int = 500,
    max_heartbeats: int = 200_000_000,
    chunk_size: int = 4_000_000,
    warmup: float = 0.0,
) -> FastAccuracyResult:
    """Failure-free NFD-U run (expected arrival times *known*).

    ``ea_offset`` is the constant by which expected arrivals trail the
    nominal send times — ``E(D)`` plus any clock skew; defaults to the
    delay distribution's mean (perfectly known EA, as the paper assumes).
    """
    offset = delay.mean if ea_offset is None else float(ea_offset)
    return _simulate_freshness_stream(
        algorithm="nfd-u",
        eta=eta,
        alpha=alpha,
        loss_probability=loss_probability,
        delay=delay,
        seed=seed,
        target_mistakes=target_mistakes,
        max_heartbeats=max_heartbeats,
        chunk_size=chunk_size,
        ea_offset=offset,
        window=None,
        warmup=warmup,
    )


def simulate_nfde_fast(
    eta: float,
    alpha: float,
    loss_probability: float,
    delay: DelayDistribution,
    window: int = 32,
    seed: int = 0,
    target_mistakes: int = 500,
    max_heartbeats: int = 200_000_000,
    chunk_size: int = 4_000_000,
    warmup: float = 0.0,
) -> FastAccuracyResult:
    """Failure-free NFD-E run (expected arrival times *estimated*,
    eq. 6.3, over the ``window`` most recent heartbeats)."""
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    return _simulate_freshness_stream(
        algorithm="nfd-e",
        eta=eta,
        alpha=alpha,
        loss_probability=loss_probability,
        delay=delay,
        seed=seed,
        target_mistakes=target_mistakes,
        max_heartbeats=max_heartbeats,
        chunk_size=chunk_size,
        ea_offset=None,
        window=int(window),
        warmup=warmup,
    )


# --------------------------------------------------------------------- #
# SFD (the common algorithm)
# --------------------------------------------------------------------- #


def simulate_sfd_fast(
    eta: float,
    timeout: float,
    loss_probability: float,
    delay: DelayDistribution,
    cutoff: Optional[float] = None,
    seed: int = 0,
    target_mistakes: int = 500,
    max_heartbeats: int = 200_000_000,
    chunk_size: int = 4_000_000,
    warmup: float = 0.0,
) -> FastAccuracyResult:
    """Failure-free run of the common algorithm (optional cutoff).

    Suspicion periods are the gaps ``> TO`` between consecutive *accepted*
    receipts (sorted by arrival time): the S-transition fires at
    ``B_t + TO`` and the next accepted receipt at ``B_{t+1}`` retracts it,
    so ``T_M = B_{t+1} − B_t − TO`` exactly.

    ``warmup`` starts the measurement at the first accepted receipt at
    or after that time (steady-state guard).
    """
    _validate_common(
        eta, loss_probability, target_mistakes, max_heartbeats, warmup
    )
    if timeout <= 0:
        raise InvalidParameterError(f"timeout must be positive, got {timeout}")
    if cutoff is not None and cutoff <= 0:
        raise InvalidParameterError(f"cutoff must be positive, got {cutoff}")
    t0 = _kernel_timer()
    rng = np.random.default_rng(seed)

    s_times: List[np.ndarray] = []
    durations: List[np.ndarray] = []
    n_s = 0
    suspect_time = 0.0
    total_time = 0.0
    heartbeats = 0
    next_seq = 1
    last_accept: Optional[float] = None
    # Arrivals past the chunk's last send time may be overtaken by the
    # next chunk's messages; buffer them until mature.
    pend = np.empty(0, dtype=float)
    warming = warmup > 0.0
    truncated = False

    while n_s < target_mistakes:
        if heartbeats >= max_heartbeats:
            truncated = True
            break
        draw = int(min(chunk_size, max_heartbeats - heartbeats))
        seqs = np.arange(next_seq, next_seq + draw, dtype=float)
        d = delay.sample(rng, draw).astype(float, copy=False)
        if loss_probability > 0.0:
            lost = rng.random(draw) < loss_probability
            d = np.where(lost, np.inf, d)
        if cutoff is not None:
            d = np.where(d > cutoff, np.inf, d)
        arrivals = seqs * eta + d
        next_seq += draw
        heartbeats += draw

        new = arrivals[np.isfinite(arrivals)]
        new.sort()
        boundary = (next_seq - 1) * eta
        # ``pend`` is kept sorted, so the mature/immature split of both
        # buffers is a prefix slice and the combination is a linear merge
        # of sorted runs — only this chunk's fresh arrivals ever get a
        # full sort.
        split_new = int(np.searchsorted(new, boundary, side="right"))
        split_pend = int(np.searchsorted(pend, boundary, side="right"))
        b = _merge_sorted(pend[:split_pend], new[:split_new])
        pend = _merge_sorted(pend[split_pend:], new[split_new:])
        if b.size == 0:
            continue
        # Steady-state guard: measurement starts at the first accepted
        # receipt >= warmup; earlier accepts are discarded outright.
        if warming:
            b = b[b >= warmup]
            if b.size == 0:
                continue
            warming = False
        if last_accept is not None:
            b = np.concatenate([[last_accept], b])
        if b.size >= 2:
            gaps = np.diff(b)
            total_time += float(b[-1] - b[0])
            over = gaps > timeout
            excess = gaps[over] - timeout
            suspect_time += float(np.sum(excess))
            starts = b[:-1][over] + timeout
            if starts.size:
                s_times.append(starts)
                durations.append(excess)
                n_s += int(starts.size)
        last_accept = float(b[-1])

    all_s = np.concatenate(s_times) if s_times else np.empty(0, dtype=float)
    all_d = (
        np.concatenate(durations) if durations else np.empty(0, dtype=float)
    )
    result = FastAccuracyResult(
        algorithm="sfd" if cutoff is None else "sfd-cutoff",
        n_heartbeats=heartbeats,
        total_time=total_time,
        suspect_time=suspect_time,
        s_transition_times=all_s,
        mistake_durations=all_d,
        truncated=truncated,
    )
    _record_kernel(result, t0)
    return result
