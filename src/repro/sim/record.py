"""Run provenance records.

A QoS number without its provenance (detector, parameters, network
model, seed, scale) is unreproducible.  :class:`RunRecord` bundles all
of it with the results in one JSON-serializable document, so every
number in a report can be traced to — and regenerated from — the exact
run that produced it.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import InvalidParameterError
from repro.metrics.io import accuracy_from_dict, accuracy_to_dict
from repro.metrics.qos import AccuracyEstimate

__all__ = ["RunRecord"]

_FORMAT = "repro.run/1"


@dataclass
class RunRecord:
    """Provenance + results of one simulation run or experiment point.

    Attributes:
        experiment: experiment identifier (e.g. "fig12", "adhoc").
        detector: the detector's ``describe()`` string.
        network: network-model parameters (delay family, moments, loss).
        parameters: run parameters (η, horizon, seeds, scale caps…).
        accuracy: the estimated accuracy metrics, if measured.
        extras: anything else worth pinning (detection times, notes).
    """

    experiment: str
    detector: str
    network: Dict[str, Any]
    parameters: Dict[str, Any]
    accuracy: Optional[AccuracyEstimate] = None
    extras: Dict[str, Any] = field(default_factory=dict)
    library_version: str = ""
    python_version: str = ""

    def __post_init__(self) -> None:
        if not self.library_version:
            from repro import __version__

            self.library_version = __version__
        if not self.python_version:
            self.python_version = platform.python_version()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": _FORMAT,
            "experiment": self.experiment,
            "detector": self.detector,
            "network": dict(self.network),
            "parameters": dict(self.parameters),
            "accuracy": (
                accuracy_to_dict(self.accuracy)
                if self.accuracy is not None
                else None
            ),
            "extras": dict(self.extras),
            "library_version": self.library_version,
            "python_version": self.python_version,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        if data.get("format") != _FORMAT:
            raise InvalidParameterError(
                f"not a run record (format={data.get('format')!r})"
            )
        accuracy = (
            accuracy_from_dict(data["accuracy"])
            if data.get("accuracy") is not None
            else None
        )
        return cls(
            experiment=data["experiment"],
            detector=data["detector"],
            network=dict(data["network"]),
            parameters=dict(data["parameters"]),
            accuracy=accuracy,
            extras=dict(data.get("extras", {})),
            library_version=data.get("library_version", ""),
            python_version=data.get("python_version", ""),
        )

    def save(self, path: Union[str, Path]) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunRecord":
        return cls.from_dict(json.loads(Path(path).read_text()))
