"""Simulation substrate.

* :mod:`repro.sim.engine` — a deterministic discrete-event simulator;
* :mod:`repro.sim.heartbeat` — the monitored process *p* (periodic
  heartbeats, optional crash);
* :mod:`repro.sim.monitor` — the monitoring process *q* hosting a failure
  detector and recording its output trace;
* :mod:`repro.sim.runner` — end-to-end experiment wiring (failure-free
  accuracy runs and crash detection-time runs);
* :mod:`repro.sim.fastsim` — vectorized NumPy simulators for
  benchmark-scale statistics (hundreds of millions of heartbeats);
* :mod:`repro.sim.seeds` — namespaced, collision-free RNG stream
  derivation shared by the serial and parallel paths;
* :mod:`repro.sim.parallel` — a deterministic multiprocessing executor
  whose results are bit-identical to serial for any job count;
* :mod:`repro.sim.batch` — batched replica kernels (crash-run ensembles
  and multi-seed accuracy runs), bit-identical to the serial paths for
  any batch size.
"""

from repro.sim.batch import (
    AccuracyTask,
    run_accuracy_task,
    run_accuracy_tasks_batched,
    run_crash_runs_batched,
    simulate_nfds_fast_batch,
    simulate_sfd_fast_batch,
)
from repro.sim.engine import EventHandle, Simulator
from repro.sim.fastsim import (
    FastAccuracyResult,
    simulate_nfde_fast,
    simulate_nfds_fast,
    simulate_nfdu_fast,
    simulate_sfd_fast,
)
from repro.sim.heartbeat import HeartbeatSender
from repro.sim.monitor import DetectorHost
from repro.sim.parallel import (
    ParallelStats,
    parallel_map,
    run_crash_runs_parallel,
    run_failure_free_parallel,
)
from repro.sim.runner import (
    CrashRunResult,
    FailureFreeResult,
    SimulationConfig,
    run_crash_runs,
    run_failure_free,
)

__all__ = [
    "Simulator",
    "EventHandle",
    "FastAccuracyResult",
    "simulate_nfds_fast",
    "simulate_nfdu_fast",
    "simulate_nfde_fast",
    "simulate_sfd_fast",
    "HeartbeatSender",
    "DetectorHost",
    "SimulationConfig",
    "FailureFreeResult",
    "CrashRunResult",
    "run_failure_free",
    "run_crash_runs",
    "ParallelStats",
    "parallel_map",
    "run_crash_runs_parallel",
    "run_failure_free_parallel",
    "AccuracyTask",
    "run_accuracy_task",
    "run_accuracy_tasks_batched",
    "run_crash_runs_batched",
    "simulate_nfds_fast_batch",
    "simulate_sfd_fast_batch",
]
