"""Batched multi-replica kernels: many independent replicas per NumPy pass.

The paper's heaviest numbers are replica ensembles — the Section 7
detection-time study averages hundreds of crash runs, Fig. 12 needs ~500
mistakes per sweep point — and :func:`repro.sim.runner.run_crash_runs`
executes one event-driven Python replica at a time.  This module batches
replicas along two axes, in both cases **bit-identical** to the serial
code paths for the same seed (asserted in ``tests/sim/test_batch.py``):

* **Crash runs** (:func:`run_crash_runs_batched`).  A crash run's
  randomness is exactly the fates of the heartbeats sent before the
  crash, drawn from the run's namespaced stream
  (``SeedSequence([seed, STREAM_CRASH_RUN, run_index])``).  The kernel
  replays those draws *in the engine's exact order* (the loss coin and
  the delay draw interleave per message), assembles an arrival matrix of
  shape ``(n_replicas, n_messages)``, and evaluates each detector's
  final output and last S-transition in closed form over the whole
  matrix — no event loop.  Because every replica is seeded by its
  absolute run index, the batch size can never change a result.

* **Failure-free accuracy ensembles** (:func:`simulate_nfds_fast_batch`,
  :func:`simulate_sfd_fast_batch`, :func:`run_accuracy_tasks_batched`).
  Multiple seeds/configurations advance through the *same* fastsim chunk
  schedule in lockstep, sharing sequence bookkeeping and (for NFD-S) the
  windowed-minimum passes as 2-D operations, so ensembles of short runs
  amortize per-call NumPy dispatch.  Each row keeps its own generator
  and consumes it exactly as the serial kernel would.

Closed-form detection recipes (all proved against the event-driven
implementations; ``end = crash_time + settle`` is the simulated horizon,
events at exactly ``end`` still fire):

* **NFD-S** — freshness points ``τ_i = i·η_d + δ`` fire up to
  ``i_end = max{i ≥ 1 : τ_i ≤ end}``.  The run ends trusting iff some
  delivered sequence number is ``≥ i_end``.  Otherwise the final
  S-transition is at ``τ_{L+1}`` where ``L`` is the last window index
  with ``F_L < τ_{L+1}`` (``F_i`` = earliest delivered arrival among
  sequences ``≥ max(i, 1)``, a suffix minimum); no such ``L`` means the
  detector never trusted and the detection time clamps to 0.
* **SFD** — with the running-maximum property of identical timeouts the
  final timer expires at ``max(accepted arrivals) + TO``; the run ends
  trusting iff that expiry lands past ``end``.
* **NFD-U / NFD-E** — receipts sorted by arrival (ties in sequence
  order, matching the engine's scheduling order); *effective* receipts
  are the running sequence maxima.  Each effective receipt ``m`` at time
  ``t_m`` computes its freshness point ``τ_m`` (NFD-U from the
  expected-arrival table, NFD-E from the eq. 6.3 rolling mean evaluated
  with the estimator's exact float grouping); the run ends trusting iff
  the last ``τ_M > end``, and otherwise the final S-transition is at
  ``min(τ_{m'}, t_{m'+1})`` for the last fresh receipt ``m'``
  (``t_{m'} < τ_{m'}``).

Runs that end suspecting with no transition after the crash (the
detector was already suspecting when the crash landed) report a
detection time of exactly ``0.0``, matching the serial clamp — see
:attr:`repro.sim.runner.CrashRunResult.n_premature`.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.nfd_e import NFDE
from repro.core.nfd_s import NFDS
from repro.core.nfd_u import NFDU
from repro.core.simple import SimpleFD
from repro.errors import InvalidParameterError
from repro.net.clocks import PerfectClock
from repro.sim.fastsim import (
    FastAccuracyResult,
    _draw_arrivals,
    _merge_sorted,
    _validate_common,
    simulate_nfde_fast,
    simulate_nfds_fast,
    simulate_nfdu_fast,
    simulate_sfd_fast,
)
from repro.sim.parallel import (
    chunk_spans,
    parallel_map,
    run_crash_runs_parallel,
)
from repro.sim.runner import (
    CrashRunResult,
    DetectorFactory,
    SimulationConfig,
    _prepare_crash_runs,
)
from repro.sim.seeds import STREAM_CRASH_RUN, derive_rng
from repro.telemetry.runtime import active as _telemetry_active

__all__ = [
    "CrashKernelSpec",
    "crash_kernel_spec",
    "run_crash_runs_batched",
    "AccuracyTask",
    "run_accuracy_task",
    "simulate_nfds_fast_batch",
    "simulate_sfd_fast_batch",
    "run_accuracy_tasks_batched",
]


# --------------------------------------------------------------------- #
# Crash-run kernel: detector introspection
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CrashKernelSpec:
    """Closed-form detection recipe derived from a detector factory."""

    kind: str  # "nfds" | "nfdu" | "nfde" | "sfd"
    eta: float = 0.0  # detector-side eta (NFD family)
    delta: float = 0.0  # NFD-S freshness shift
    alpha: float = 0.0  # NFD-U/E slack
    window: int = 0  # NFD-E estimator window
    timeout: float = 0.0  # SFD timeout
    cutoff: Optional[float] = None  # SFD cutoff
    expected_arrival: Optional[Callable[[int], float]] = None  # NFD-U


def crash_kernel_spec(
    detector_factory: DetectorFactory, config: SimulationConfig
) -> Optional[CrashKernelSpec]:
    """Derive the batched-kernel recipe for a factory, or ``None``.

    The kernel covers the library's four detectors under perfect clocks
    with the paper's sequence numbering (``first_seq = 1``) and a fresh
    probe instance.  Exact types only: a subclass may override behaviour
    the closed forms do not model.  For NFD-U the ``expected_arrival``
    callable must be pure and identical across factory invocations (it
    is tabulated once per batch); NFD-E — whose estimator state the
    kernel models explicitly — is matched before its NFD-U base.
    Anything unrecognized falls back to the event-driven path.
    """
    for clock in (config.sender_clock, config.monitor_clock):
        if clock is not None and type(clock) is not PerfectClock:
            return None
    probe = detector_factory()
    t = type(probe)
    if t is NFDE:
        if probe._first_seq != 1 or probe._ell != 0:
            return None
        if probe.estimator.n_samples != 0:
            return None
        return CrashKernelSpec(
            kind="nfde",
            eta=probe._eta,
            alpha=probe._alpha,
            window=probe.estimator.window,
        )
    if t is NFDU:
        if probe._first_seq != 1 or probe._ell != 0:
            return None
        return CrashKernelSpec(
            kind="nfdu",
            eta=probe._eta,
            alpha=probe._alpha,
            expected_arrival=probe._expected_arrival,
        )
    if t is NFDS:
        if probe._first_seq != 1:
            return None
        return CrashKernelSpec(kind="nfds", eta=probe._eta, delta=probe._delta)
    if t is SimpleFD:
        return CrashKernelSpec(
            kind="sfd", timeout=probe._timeout, cutoff=probe._cutoff
        )
    return None


# --------------------------------------------------------------------- #
# Crash-run kernel: RNG replay and arrival matrices
# --------------------------------------------------------------------- #


def _send_schedule(eta: float, max_crash: float) -> np.ndarray:
    """Real send times ``σ_j = η + (j−1)·η``, covering every crash time.

    The arithmetic mirrors :meth:`HeartbeatSender.send_local_time`
    (``origin + (seq − first_seq)·η`` with the default origin
    ``1·η``) term for term, so the schedule is bit-equal to the times
    at which the engine hands messages to the link.
    """
    n = int(math.ceil(max_crash / eta)) + 2
    sends = eta + np.arange(n, dtype=np.int64) * eta
    while sends[-1] < max_crash:  # float-edge paranoia
        n *= 2
        sends = eta + np.arange(n, dtype=np.int64) * eta
    return sends


# Number of probe draws used to certify a fast sampling shortcut.  The
# shortcuts below are *structural* (the same per-element code path in
# NumPy), so a short draw-for-draw prefix plus a final bit-generator
# state comparison either passes for every stream or fails immediately.
_PROBE_DRAWS = 24


def _candidate_scalar_sampler(delay) -> Optional[Callable]:
    """A cheap scalar draw intended to equal ``delay.sample(rng, 1)[0]``.

    Families whose single draw is one plain :class:`numpy.random.Generator`
    method call can skip the array round-trip of ``sample(rng, 1)``.  The
    candidate is only ever used after :func:`_verified_scalar_sampler`
    certifies it draw-for-draw, so reading the distributions' private
    parameters here is safe: any drift between these closures and the
    ``sample`` implementations makes the certification fail closed.
    """
    from repro.net import delays as d

    t = type(delay)
    if t is d.ExponentialDelay:
        mean = delay.mean
        return lambda rng: float(rng.exponential(mean))
    if t is d.ShiftedExponentialDelay:
        shift, scale = delay.shift, delay._scale
        return lambda rng: float(shift + rng.exponential(scale))
    if t is d.UniformDelay:
        low, high = delay._low, delay._high
        return lambda rng: float(rng.uniform(low, high))
    if t is d.ConstantDelay:
        value = delay.value  # np.full consumes no randomness
        return lambda rng: value
    if t is d.GammaDelay:
        shape, scale = delay._shape, delay._scale
        return lambda rng: float(rng.gamma(shape, scale))
    if t is d.WeibullDelay:
        shape, scale = delay._shape, delay._scale
        return lambda rng: float(scale * rng.weibull(shape))
    if t is d.LogNormalDelay:
        mu, sigma = delay._mu, delay._sigma
        return lambda rng: float(rng.lognormal(mu, sigma))
    return None


def _verified_scalar_sampler(delay) -> Optional[Callable]:
    """The scalar sampler, certified against the generic path, or None."""
    draw = _candidate_scalar_sampler(delay)
    if draw is None:
        return None
    a = np.random.default_rng(0xB1750)
    b = np.random.default_rng(0xB1750)
    for _ in range(_PROBE_DRAWS):
        if float(delay.sample(a, 1)[0]) != draw(b):
            return None
    if a.bit_generator.state != b.bit_generator.state:
        return None
    return draw


def _verified_batch_sampling(delay) -> bool:
    """True iff ``delay.sample(rng, n)`` equals ``n`` single draws.

    NumPy's Generator fills arrays one variate at a time from the same
    bit stream, so this holds for the plain families; it fails (and must
    fail) for e.g. mixtures, whose batched component choice consumes the
    stream in a different order than per-message choices would.
    """
    a = np.random.default_rng(0xB1751)
    b = np.random.default_rng(0xB1751)
    batch = np.asarray(delay.sample(a, _PROBE_DRAWS), dtype=float)
    singles = np.array(
        [float(delay.sample(b, 1)[0]) for _ in range(_PROBE_DRAWS)]
    )
    return bool(
        np.array_equal(batch, singles)
        and a.bit_generator.state == b.bit_generator.state
    )


class _FateStream:
    """One run's replayed message fates, extendable on demand."""

    __slots__ = ("rng", "fates", "n")

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self.fates = np.empty(128, dtype=float)
        self.n = 0


# Replayed fate prefixes, shared across run_crash_runs_batched calls:
# delay instance (weakly held) -> (seed, p_L) -> run_index -> stream.
# Experiments that evaluate several detectors over one link — the four
# cases of the detection-time study, say — reuse the same crash-run
# streams, so each stream is replayed once instead of once per case.
_FATES_CACHE: "weakref.WeakKeyDictionary[Any, Dict]" = (
    weakref.WeakKeyDictionary()
)
_FATES_CACHE_MAX_STREAMS = 65536


class _FateReplayer:
    """Replays :meth:`LossyLink.transmit` draw for draw, with caching.

    The loss coin is flipped first and a lost message consumes *no*
    delay draw, so with loss the stream interleaving is data-dependent
    and stays a scalar loop; the loop body uses the certified scalar
    sampler when one exists.  Without loss the whole prefix is one
    certified batched draw.  Either way the values are exactly the ones
    the event-driven engine would consume.
    """

    def __init__(self, config: SimulationConfig) -> None:
        self._seed = config.seed
        self._delay = config.delay
        self._p_l = config.loss_probability
        self._sampler = _verified_scalar_sampler(config.delay)
        self._batch_ok = self._p_l == 0.0 and _verified_batch_sampling(
            config.delay
        )
        try:
            per_delay = _FATES_CACHE.setdefault(config.delay, {})
        except TypeError:  # non-weakrefable delay object: skip the cache
            self._streams: Dict[int, _FateStream] = {}
        else:
            bucket = per_delay.setdefault((self._seed, self._p_l), {})
            if len(bucket) > _FATES_CACHE_MAX_STREAMS:
                bucket.clear()
            self._streams = bucket

    def fates(self, run_index: int, n_sent: int) -> np.ndarray:
        """Delays of the ``n_sent`` pre-crash heartbeats (``inf`` = lost)."""
        st = self._streams.get(run_index)
        if st is None:
            st = _FateStream(
                derive_rng(self._seed, STREAM_CRASH_RUN, run_index)
            )
            self._streams[run_index] = st
        if n_sent > st.n:
            self._extend(st, n_sent)
        return st.fates[:n_sent]

    def _extend(self, st: _FateStream, need: int) -> None:
        if need > st.fates.size:
            grown = np.empty(max(need, 2 * st.fates.size), dtype=float)
            grown[: st.n] = st.fates[: st.n]
            st.fates = grown
        f = st.fates
        rng = st.rng
        p_l = self._p_l
        draw = self._sampler
        lo = st.n
        if p_l > 0.0:
            coin = rng.random
            if draw is not None:
                for m in range(lo, need):
                    f[m] = math.inf if coin() < p_l else draw(rng)
            else:
                delay = self._delay
                for m in range(lo, need):
                    if coin() < p_l:
                        f[m] = math.inf
                    else:
                        f[m] = float(delay.sample(rng, 1)[0])
        elif self._batch_ok:
            f[lo:need] = self._delay.sample(rng, need - lo)
        elif draw is not None:
            for m in range(lo, need):
                f[m] = draw(rng)
        else:
            delay = self._delay
            for m in range(lo, need):
                f[m] = float(delay.sample(rng, 1)[0])
        st.n = need


def _replay_message_fates(
    config: SimulationConfig, n_sent: int, run_index: int
) -> np.ndarray:
    """One run's fates through a throwaway replayer (test/debug helper)."""
    return _FateReplayer(config).fates(run_index, n_sent).copy()


# --------------------------------------------------------------------- #
# Crash-run kernel: closed-form detection per algorithm
# --------------------------------------------------------------------- #


def _detect_nfds(
    A: np.ndarray,
    ends: np.ndarray,
    crash: np.ndarray,
    eta: float,
    delta: float,
) -> np.ndarray:
    """Detection times for NFD-S replicas from their arrival matrices."""
    n_rows, n_cols = A.shape
    if n_cols == 0:
        return np.zeros(n_rows, dtype=float)
    delivered = A <= ends[:, None]

    # Last freshness point that fires: i_end = max{i : i·η + δ ≤ end},
    # clamped to 0.  The float guess is corrected with the same guarded
    # comparisons the detector uses, so the boundary cases agree exactly.
    i_end = np.floor((ends - delta) / eta).astype(np.int64)
    while True:
        over = i_end * eta + delta > ends
        if not bool(over.any()):
            break
        i_end[over] -= 1
    while True:
        under = (i_end + 1) * eta + delta <= ends
        if not bool(under.any()):
            break
        i_end[under] += 1
    np.maximum(i_end, 0, out=i_end)

    # Final output: trusting iff some delivered sequence number ≥ i_end
    # (any delivery at all when i_end = 0).
    any_del = delivered.any(axis=1)
    max_seq = np.where(
        any_del, n_cols - np.argmax(delivered[:, ::-1], axis=1), 0
    )
    trusting = any_del & (max_seq >= i_end)

    # F_i = earliest delivered arrival among seqs ≥ max(i, 1): a suffix
    # minimum over the arrival matrix (column c holds seq c+1).
    a_del = np.where(delivered, A, np.inf)
    sufmin = np.minimum.accumulate(a_del[:, ::-1], axis=1)[:, ::-1]
    i_max = int(i_end.max())
    idx = np.arange(i_max + 1, dtype=np.int64)
    src = np.maximum(idx, 1) - 1
    in_range = src < n_cols
    f_mat = np.full((n_rows, i_max + 1), np.inf)
    f_mat[:, in_range] = sufmin[:, src[in_range]]

    # Last window trusted just before its successor freshness point.
    tau_next = (idx + 1) * eta + delta
    qual = (f_mat < tau_next[None, :]) & (idx[None, :] <= i_end[:, None])
    has_l = qual.any(axis=1)
    last_l = i_max - np.argmax(qual[:, ::-1], axis=1)
    t_star = (last_l + 1) * eta + delta
    return np.where(
        trusting,
        np.inf,
        np.where(has_l, np.maximum(0.0, t_star - crash), 0.0),
    )


def _detect_sfd(
    A: np.ndarray,
    sends: np.ndarray,
    ends: np.ndarray,
    crash: np.ndarray,
    timeout: float,
    cutoff: Optional[float],
) -> np.ndarray:
    """Detection times for SFD replicas from their arrival matrices."""
    n_rows, n_cols = A.shape
    if n_cols == 0:
        return np.zeros(n_rows, dtype=float)
    accepted = A <= ends[:, None]
    if cutoff is not None:
        # The detector measures the delay as receive − send on the float
        # values it sees, so the filter uses A − σ rather than the raw
        # drawn delay (the round-trip can differ in the last ulp).
        accepted &= (A - sends[None, :]) <= cutoff
    has = accepted.any(axis=1)
    b_last = np.max(np.where(accepted, A, -np.inf), axis=1)
    expiry = b_last + timeout
    return np.where(
        ~has,
        0.0,
        np.where(expiry > ends, np.inf, np.maximum(0.0, expiry - crash)),
    )


def _detect_freshness(
    A: np.ndarray,
    ends: np.ndarray,
    crash: np.ndarray,
    spec: CrashKernelSpec,
) -> np.ndarray:
    """Detection times for NFD-U / NFD-E replicas."""
    n_rows, n_cols = A.shape
    if n_cols == 0:
        return np.zeros(n_rows, dtype=float)
    # Receipts in arrival order; the stable sort keeps equal arrivals in
    # sequence order, which is the engine's scheduling order for them.
    a_del = np.where(A <= ends[:, None], A, np.inf)
    order = np.argsort(a_del, axis=1, kind="stable")
    e_t = np.take_along_axis(a_del, order, axis=1)
    e_seq = order + 1  # column c carries seq c+1
    valid = np.isfinite(e_t)

    # Effective receipts: strict running maxima of the sequence number.
    seq_v = np.where(valid, e_seq, 0)
    cummax = np.maximum.accumulate(seq_v, axis=1)
    prev = np.concatenate(
        [np.zeros((n_rows, 1), dtype=cummax.dtype), cummax[:, :-1]], axis=1
    )
    eff = valid & (seq_v > prev)
    count = eff.sum(axis=1)

    # Left-pack the effective receipts so receipt ordinal = column.
    pack = np.argsort(~eff, axis=1, kind="stable")
    t = np.take_along_axis(e_t, pack, axis=1)
    s = np.take_along_axis(e_seq, pack, axis=1)
    pos = np.arange(n_cols)[None, :]
    active = pos < count[:, None]
    t = np.where(active, t, np.inf)
    s = np.where(active, s, 0)

    # τ per effective receipt, with the detectors' exact float grouping.
    if spec.kind == "nfdu":
        ea_fn = spec.expected_arrival
        assert ea_fn is not None
        ea_tab = np.array(
            [float(ea_fn(j)) for j in range(2, n_cols + 2)], dtype=float
        )
        tau = np.where(
            active, ea_tab[np.maximum(s, 1) - 1] + spec.alpha, -np.inf
        )
    else:
        win = spec.window
        eta = spec.eta
        norm = np.where(active, t - eta * s, 0.0)
        tau = np.empty((n_rows, n_cols), dtype=float)
        rolling = np.zeros(n_rows, dtype=float)
        for r in range(int(count.max())):
            rolling = rolling + norm[:, r]
            if r >= win:
                rolling = rolling - norm[:, r - win]
            n_r = min(r + 1, win)
            tau[:, r] = (rolling / n_r + eta * (s[:, r] + 1)) + spec.alpha
        tau = np.where(active, tau, -np.inf)

    rows = np.arange(n_rows)
    has = count > 0
    last = np.maximum(count - 1, 0)
    undetected = has & (tau[rows, last] > ends)

    # Last *fresh* receipt (arrived before its own freshness point); the
    # trust it establishes ends at its timer or at the next effective
    # receipt (then stale), whichever the engine reaches first.
    fresh = active & (tau > t)
    has_m = fresh.any(axis=1)
    m_prime = n_cols - 1 - np.argmax(fresh[:, ::-1], axis=1)
    t_ext = np.concatenate([t, np.full((n_rows, 1), np.inf)], axis=1)
    t_star = np.minimum(tau[rows, m_prime], t_ext[rows, m_prime + 1])
    return np.where(
        ~has,
        0.0,
        np.where(
            undetected,
            np.inf,
            np.where(has_m, np.maximum(0.0, t_star - crash), 0.0),
        ),
    )


def _crash_batch(
    spec: CrashKernelSpec,
    replayer: _FateReplayer,
    crash_times: np.ndarray,
    index0: int,
    settle: float,
    sends: np.ndarray,
) -> np.ndarray:
    """Detection times for one contiguous batch of crash runs."""
    ends = crash_times + settle
    n_sent = np.searchsorted(sends, crash_times, side="left")
    n_cols = int(n_sent.max()) if n_sent.size else 0
    n_rows = crash_times.size
    A = np.full((n_rows, n_cols), np.inf)
    for r in range(n_rows):
        n = int(n_sent[r])
        d = replayer.fates(index0 + r, n)
        A[r, :n] = sends[:n] + d
    if spec.kind == "nfds":
        return _detect_nfds(A, ends, crash_times, spec.eta, spec.delta)
    if spec.kind == "sfd":
        return _detect_sfd(
            A, sends[:n_cols], ends, crash_times, spec.timeout, spec.cutoff
        )
    return _detect_freshness(A, ends, crash_times, spec)


def run_crash_runs_batched(
    detector_factory: DetectorFactory,
    config: SimulationConfig,
    n_runs: int,
    batch_size: int = 64,
    jobs: Optional[int] = 1,
    crash_window: Optional[tuple] = None,
    settle_time: Optional[float] = None,
    keep_traces: bool = False,
    progress=None,
    with_stats: bool = False,
):
    """Batched :func:`repro.sim.runner.run_crash_runs` — same results.

    Replicas are grouped into batches of ``batch_size`` and each batch
    is evaluated by one vectorized kernel pass; batches fan out over
    ``jobs`` workers (batch within a worker × workers across cores).
    Crash times, per-run streams and the detection semantics are those
    of the serial runner, so the output is bit-identical for every
    ``(batch_size, jobs)`` combination.

    When no closed-form kernel applies — unknown detector type,
    non-perfect clocks, or ``keep_traces=True`` (the kernel never builds
    traces) — this transparently falls back to
    :func:`repro.sim.parallel.run_crash_runs_parallel`.
    """
    if batch_size < 1:
        raise InvalidParameterError(
            f"batch_size must be >= 1, got {batch_size}"
        )
    spec = (
        None if keep_traces else crash_kernel_spec(detector_factory, config)
    )
    if spec is None:
        return run_crash_runs_parallel(
            detector_factory,
            config,
            n_runs,
            jobs=jobs,
            crash_window=crash_window,
            settle_time=settle_time,
            keep_traces=keep_traces,
            progress=progress,
            with_stats=with_stats,
        )
    crash_times, settle = _prepare_crash_runs(
        config, n_runs, crash_window, settle_time
    )
    sends = _send_schedule(config.eta, float(crash_times.max()))
    spans = chunk_spans(n_runs, int(batch_size))
    replayer = _FateReplayer(config)

    def span_fn(span: Tuple[int, int]) -> np.ndarray:
        start, stop = span
        return _crash_batch(
            spec, replayer, crash_times[start:stop], start, settle, sends
        )

    outs, stats = parallel_map(
        span_fn,
        spans,
        jobs=jobs,
        chunk_size=1,
        progress=progress,
        with_stats=True,
    )
    detections = np.concatenate(outs)
    reg = _telemetry_active()
    if reg is not None:
        labels = {"kernel": spec.kind}
        reg.counter("batch_crash_runs_total", labels=labels).inc(n_runs)
        reg.counter("batch_crash_batches_total", labels=labels).inc(
            len(spans)
        )
    result = CrashRunResult(
        detection_times=detections, crash_times=crash_times, traces=[]
    )
    return (result, stats) if with_stats else result


# --------------------------------------------------------------------- #
# Multi-seed batching for the failure-free accuracy kernels
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class AccuracyTask:
    """One failure-free fastsim evaluation: kernel kind + its kwargs.

    ``kwargs`` are exactly the keyword arguments of the corresponding
    serial kernel (``simulate_<kind>_fast``), so a task runs identically
    through :func:`run_accuracy_task` or a batched executor.
    """

    kind: str  # "nfds" | "nfdu" | "nfde" | "sfd"
    kwargs: Dict[str, Any]


_SERIAL_KERNELS = {
    "nfds": simulate_nfds_fast,
    "nfdu": simulate_nfdu_fast,
    "nfde": simulate_nfde_fast,
    "sfd": simulate_sfd_fast,
}

# Shared loop-schedule defaults of the serial kernels; batching groups
# tasks by the resolved values so lockstep rows draw identical chunks.
_SCHEDULE_DEFAULTS = {
    "target_mistakes": 500,
    "max_heartbeats": 200_000_000,
    "chunk_size": 4_000_000,
}


def run_accuracy_task(task: AccuracyTask) -> FastAccuracyResult:
    """Run one task through its serial kernel."""
    if task.kind not in _SERIAL_KERNELS:
        raise InvalidParameterError(f"unknown accuracy kind {task.kind!r}")
    return _SERIAL_KERNELS[task.kind](**task.kwargs)


def _schedule_key(kwargs: Dict[str, Any]) -> Tuple[int, int, int]:
    return tuple(
        int(kwargs.get(name, default))
        for name, default in _SCHEDULE_DEFAULTS.items()
    )


class _NFDSRow:
    """Per-row state of one lockstep NFD-S run (mirrors the serial body)."""

    def __init__(self, kwargs: Dict[str, Any]) -> None:
        self.eta = float(kwargs["eta"])
        self.delta = float(kwargs["delta"])
        self.loss = float(kwargs["loss_probability"])
        self.delay = kwargs["delay"]
        self.warmup = float(kwargs.get("warmup", 0.0))
        _validate_common(self.eta, self.loss, 1, 1, self.warmup)
        if self.delta < 0:
            raise InvalidParameterError(
                f"delta must be >= 0, got {self.delta}"
            )
        self.k = int(math.ceil(self.delta / self.eta - 1e-12))
        self.rng = np.random.default_rng(kwargs.get("seed", 0))
        self.warming = self.warmup > 0.0
        self.s_times: List[np.ndarray] = []
        self.durations: List[np.ndarray] = []
        self.n_s = 0
        self.suspect_time = 0.0
        self.windows_done = 0
        self.carry = np.empty(0, dtype=float)
        self.prev_f: Optional[float] = None
        self.open_mistake_start: Optional[float] = None
        self.heartbeats = 0
        self.active = True
        self.result: Optional[FastAccuracyResult] = None

    def step(self, f: np.ndarray, idx: np.ndarray, carry_vals: np.ndarray):
        """One chunk of accounting; ``f`` is this row of the 2-D windowed
        minimum, ``idx`` the shared window-index vector.  Line for line
        the serial :func:`simulate_nfds_fast` chunk body."""
        self.carry = carry_vals.copy()
        m = f.shape[0]
        tau = idx * self.eta + self.delta
        tau_next = tau + self.eta
        if self.warming:
            nskip = int(np.searchsorted(tau, self.warmup, side="left"))
            if nskip >= m:
                self.prev_f = float(f[-1])
                return
            if nskip:
                self.prev_f = float(f[nskip - 1])
                f = f[nskip:]
                tau = tau[nskip:]
                tau_next = tau_next[nskip:]
                m -= nskip
            self.warming = False

        self.suspect_time += float(
            np.sum(np.clip(np.minimum(f, tau_next) - tau, 0.0, self.eta))
        )
        self.windows_done += m

        f_prev = np.empty(m, dtype=float)
        f_prev[1:] = f[:-1]
        f_prev[0] = np.inf if self.prev_f is None else self.prev_f
        s_mask = (f > tau) & (f_prev < tau)
        s_local = np.nonzero(s_mask)[0]
        g_local = np.nonzero(f < tau_next)[0]

        if self.open_mistake_start is not None and g_local.size:
            end = float(f[g_local[0]])
            self.durations.append(
                np.array([end - self.open_mistake_start], dtype=float)
            )
            self.open_mistake_start = None

        if s_local.size:
            pos = np.searchsorted(g_local, s_local, side="left")
            closed = pos < g_local.size
            closed_idx = s_local[closed]
            ends = f[g_local[pos[closed]]]
            self.durations.append(ends - tau[closed_idx])
            if int((~closed).sum()):
                self.open_mistake_start = float(tau[s_local[-1]])
            self.s_times.append(tau[s_local])
            self.n_s += int(s_local.size)

        self.prev_f = float(f[-1])

    def finish(self, truncated: bool) -> None:
        self.active = False
        all_s = (
            np.concatenate(self.s_times)
            if self.s_times
            else np.empty(0, dtype=float)
        )
        all_d = (
            np.concatenate(self.durations)
            if self.durations
            else np.empty(0, dtype=float)
        )
        self.result = FastAccuracyResult(
            algorithm="nfd-s",
            n_heartbeats=self.heartbeats,
            total_time=self.windows_done * self.eta,
            suspect_time=self.suspect_time,
            s_transition_times=all_s,
            mistake_durations=all_d,
            truncated=truncated,
        )


def simulate_nfds_fast_batch(
    tasks: Sequence[Dict[str, Any]],
) -> List[FastAccuracyResult]:
    """Lockstep multi-seed NFD-S runs, bit-identical to serial calls.

    Every task dict holds :func:`simulate_nfds_fast` keyword arguments.
    All tasks must share the chunk schedule (``target_mistakes``,
    ``max_heartbeats``, ``chunk_size``) and the window width ``k`` —
    that keeps all rows on the same draw sizes, so each row's generator
    is consumed exactly as the serial kernel would consume it; ``eta``,
    ``delta``, ``delay``, ``loss_probability``, ``seed`` and ``warmup``
    are free per row.  The windowed-minimum passes — the kernel's hot
    loop — run once over the whole ``(rows, chunk)`` matrix.
    """
    if not tasks:
        return []
    keys = {_schedule_key(kw) for kw in tasks}
    if len(keys) != 1:
        raise InvalidParameterError(
            "all batched NFD-S tasks must share target_mistakes/"
            f"max_heartbeats/chunk_size; got {sorted(keys)}"
        )
    target, max_heartbeats, chunk_size = keys.pop()
    _validate_common(1.0, 0.0, target, max_heartbeats)
    rows = [_NFDSRow(kw) for kw in tasks]
    ks = {row.k for row in rows}
    if len(ks) != 1:
        raise InvalidParameterError(
            f"all batched NFD-S tasks must share k = ceil(delta/eta); "
            f"got {sorted(ks)}"
        )
    k = ks.pop()

    heartbeats = 0
    carry_start_seq = 1
    carry_len = 0
    while True:
        for row in rows:
            if row.active and row.n_s >= target:
                row.finish(truncated=False)
        live = [row for row in rows if row.active]
        if not live:
            break
        if heartbeats >= max_heartbeats:
            for row in live:
                row.finish(truncated=True)
            break
        draw = int(min(chunk_size, max_heartbeats - heartbeats))
        if heartbeats + draw < k + 1:
            draw = (k + 1) - heartbeats
        first_new = carry_start_seq + carry_len
        new_seqs = np.arange(first_new, first_new + draw, dtype=float)
        heartbeats += draw
        length = carry_len + draw
        mats = np.empty((len(live), length), dtype=float)
        for j, row in enumerate(live):
            mats[j, :carry_len] = row.carry
            mats[j, carry_len:] = _draw_arrivals(
                row.delay, row.loss, row.rng, new_seqs, row.eta
            )
            row.heartbeats = heartbeats

        m = length - k
        if m <= 0:
            for j, row in enumerate(live):
                row.carry = mats[j].copy()
            carry_len = length
            continue
        f2 = mats[:, :m].copy()
        for j in range(1, k + 1):
            np.minimum(f2, mats[:, j : j + m], out=f2)
        idx = np.arange(carry_start_seq, carry_start_seq + m, dtype=float)
        for j, row in enumerate(live):
            row.step(f2[j], idx, mats[j, m:])
        carry_start_seq += m
        carry_len = k

    return [row.result for row in rows]  # type: ignore[misc]


class _SFDRow:
    """Per-row state of one lockstep SFD run (mirrors the serial body)."""

    def __init__(self, kwargs: Dict[str, Any]) -> None:
        self.eta = float(kwargs["eta"])
        self.timeout = float(kwargs["timeout"])
        self.loss = float(kwargs["loss_probability"])
        self.delay = kwargs["delay"]
        cutoff = kwargs.get("cutoff", None)
        self.cutoff = None if cutoff is None else float(cutoff)
        self.warmup = float(kwargs.get("warmup", 0.0))
        _validate_common(self.eta, self.loss, 1, 1, self.warmup)
        if self.timeout <= 0:
            raise InvalidParameterError(
                f"timeout must be positive, got {self.timeout}"
            )
        if self.cutoff is not None and self.cutoff <= 0:
            raise InvalidParameterError(
                f"cutoff must be positive, got {self.cutoff}"
            )
        self.rng = np.random.default_rng(kwargs.get("seed", 0))
        self.warming = self.warmup > 0.0
        self.s_times: List[np.ndarray] = []
        self.durations: List[np.ndarray] = []
        self.n_s = 0
        self.suspect_time = 0.0
        self.total_time = 0.0
        self.last_accept: Optional[float] = None
        self.pend = np.empty(0, dtype=float)
        self.heartbeats = 0
        self.active = True
        self.result: Optional[FastAccuracyResult] = None

    def step(self, seqs: np.ndarray, next_seq: int, draw: int) -> None:
        """One chunk, line for line the serial :func:`simulate_sfd_fast`
        body (the draws must stay per-row: each row owns a generator)."""
        d = self.delay.sample(self.rng, draw).astype(float, copy=False)
        if self.loss > 0.0:
            lost = self.rng.random(draw) < self.loss
            d = np.where(lost, np.inf, d)
        if self.cutoff is not None:
            d = np.where(d > self.cutoff, np.inf, d)
        arrivals = seqs * self.eta + d

        new = arrivals[np.isfinite(arrivals)]
        new.sort()
        boundary = (next_seq - 1) * self.eta
        split_new = int(np.searchsorted(new, boundary, side="right"))
        split_pend = int(np.searchsorted(self.pend, boundary, side="right"))
        b = _merge_sorted(self.pend[:split_pend], new[:split_new])
        self.pend = _merge_sorted(self.pend[split_pend:], new[split_new:])
        if b.size == 0:
            return
        if self.warming:
            b = b[b >= self.warmup]
            if b.size == 0:
                return
            self.warming = False
        if self.last_accept is not None:
            b = np.concatenate([[self.last_accept], b])
        if b.size >= 2:
            gaps = np.diff(b)
            self.total_time += float(b[-1] - b[0])
            over = gaps > self.timeout
            excess = gaps[over] - self.timeout
            self.suspect_time += float(np.sum(excess))
            starts = b[:-1][over] + self.timeout
            if starts.size:
                self.s_times.append(starts)
                self.durations.append(excess)
                self.n_s += int(starts.size)
        self.last_accept = float(b[-1])

    def finish(self, truncated: bool) -> None:
        self.active = False
        all_s = (
            np.concatenate(self.s_times)
            if self.s_times
            else np.empty(0, dtype=float)
        )
        all_d = (
            np.concatenate(self.durations)
            if self.durations
            else np.empty(0, dtype=float)
        )
        self.result = FastAccuracyResult(
            algorithm="sfd" if self.cutoff is None else "sfd-cutoff",
            n_heartbeats=self.heartbeats,
            total_time=self.total_time,
            suspect_time=self.suspect_time,
            s_transition_times=all_s,
            mistake_durations=all_d,
            truncated=truncated,
        )


def simulate_sfd_fast_batch(
    tasks: Sequence[Dict[str, Any]],
) -> List[FastAccuracyResult]:
    """Lockstep multi-seed SFD runs, bit-identical to serial calls.

    Every task dict holds :func:`simulate_sfd_fast` keyword arguments;
    all tasks must share the chunk schedule (``target_mistakes``,
    ``max_heartbeats``, ``chunk_size``); ``eta``, ``timeout``,
    ``cutoff``, ``delay``, ``loss_probability``, ``seed`` and ``warmup``
    are free per row.  Rows advance through the same chunk sequence —
    sharing the sequence-number bookkeeping — and deactivate
    individually when they hit their mistake target.
    """
    if not tasks:
        return []
    keys = {_schedule_key(kw) for kw in tasks}
    if len(keys) != 1:
        raise InvalidParameterError(
            "all batched SFD tasks must share target_mistakes/"
            f"max_heartbeats/chunk_size; got {sorted(keys)}"
        )
    target, max_heartbeats, chunk_size = keys.pop()
    _validate_common(1.0, 0.0, target, max_heartbeats)
    rows = [_SFDRow(kw) for kw in tasks]

    heartbeats = 0
    next_seq = 1
    while True:
        for row in rows:
            if row.active and row.n_s >= target:
                row.finish(truncated=False)
        live = [row for row in rows if row.active]
        if not live:
            break
        if heartbeats >= max_heartbeats:
            for row in live:
                row.finish(truncated=True)
            break
        draw = int(min(chunk_size, max_heartbeats - heartbeats))
        seqs = np.arange(next_seq, next_seq + draw, dtype=float)
        next_seq += draw
        heartbeats += draw
        for row in live:
            row.step(seqs, next_seq, draw)
            row.heartbeats = heartbeats

    return [row.result for row in rows]  # type: ignore[misc]


def run_accuracy_tasks_batched(
    tasks: Sequence[AccuracyTask],
    batch_size: int = 64,
    jobs: Optional[int] = 1,
    with_stats: bool = False,
):
    """Run accuracy tasks with multi-seed batching; results in task order.

    NFD-S tasks sharing a chunk schedule and window width, and SFD tasks
    sharing a chunk schedule, are grouped into lockstep batches of up to
    ``batch_size`` rows; everything else (NFD-U/E, odd-one-out
    schedules) runs through its serial kernel.  The work units fan out
    over ``jobs`` workers.  Every result is bit-identical to
    :func:`run_accuracy_task` on the same task, for any ``batch_size``
    and ``jobs``.
    """
    if batch_size < 1:
        raise InvalidParameterError(
            f"batch_size must be >= 1, got {batch_size}"
        )
    tasks = list(tasks)
    groups: Dict[Any, List[int]] = {}
    for i, task in enumerate(tasks):
        if task.kind == "nfds":
            eta = float(task.kwargs["eta"])
            delta = float(task.kwargs["delta"])
            k = int(math.ceil(delta / eta - 1e-12))
            key: Any = ("nfds", k, _schedule_key(task.kwargs))
        elif task.kind == "sfd":
            key = ("sfd", _schedule_key(task.kwargs))
        else:
            key = ("serial", i)
        groups.setdefault(key, []).append(i)

    units: List[Tuple[str, List[int]]] = []
    for key, members in groups.items():
        kind = key[0]
        if kind in ("nfds", "sfd"):
            for start in range(0, len(members), batch_size):
                units.append((kind, members[start : start + batch_size]))
        else:
            units.append(("serial", members))

    def unit_fn(unit: Tuple[str, List[int]]) -> List[FastAccuracyResult]:
        kind, idxs = unit
        if kind == "nfds":
            return simulate_nfds_fast_batch([tasks[i].kwargs for i in idxs])
        if kind == "sfd":
            return simulate_sfd_fast_batch([tasks[i].kwargs for i in idxs])
        return [run_accuracy_task(tasks[i]) for i in idxs]

    outs, stats = parallel_map(
        unit_fn, units, jobs=jobs, chunk_size=1, with_stats=True
    )
    results: List[Optional[FastAccuracyResult]] = [None] * len(tasks)
    for (_, idxs), unit_results in zip(units, outs):
        for i, res in zip(idxs, unit_results):
            results[i] = res
    reg = _telemetry_active()
    if reg is not None:
        reg.counter("batch_accuracy_tasks_total").inc(len(tasks))
        reg.counter("batch_accuracy_units_total").inc(len(units))
        for res in results:
            if res is None:
                continue
            labels = {"algorithm": res.algorithm}
            reg.counter("batch_heartbeats_total", labels=labels).inc(
                res.n_heartbeats
            )
            reg.counter("batch_mistakes_total", labels=labels).inc(
                res.n_mistakes
            )
    return (results, stats) if with_stats else results
