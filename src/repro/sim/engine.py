"""A small deterministic discrete-event simulator.

Design notes (why not asyncio/simpy): the experiments in this repository
need *bit-for-bit reproducible* runs keyed by a seed, virtual time that can
advance by millions of units instantly, and zero scheduling jitter — a
classic heap-driven event loop delivers all three in ~150 lines and has no
third-party dependency.

Events scheduled for the same time fire in scheduling order (a monotonic
sequence number breaks ties), which makes the semantics of simultaneous
freshness points and message receipts well-defined and stable.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["EventHandle", "Simulator"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)
    owner: Optional["Simulator"] = field(default=None, compare=False, repr=False)


class EventHandle:
    """Opaque handle to a scheduled event; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        return self._event.fired

    def cancel(self) -> None:
        """Cancel the event; safe to call more than once."""
        ev = self._event
        if ev.cancelled:
            return
        ev.cancelled = True
        if not ev.fired and ev.owner is not None:
            ev.owner._live -= 1


class Simulator:
    """Heap-driven virtual-time event loop.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule_at(3.0, lambda: fired.append(sim.now))
        >>> sim.run_until(10.0)
        >>> fired
        [3.0]
    """

    def __init__(self) -> None:
        self._heap: List[_Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        # Live (scheduled, non-cancelled, non-fired) event count, updated
        # on schedule/cancel/pop so `pending` is O(1) — the heartbeat
        # sender queries it on every send, which made the old
        # scan-the-heap implementation O(heap) per event.
        self._live = 0
        # Optional telemetry series (None = uninstrumented; the loops
        # below pay only a None check per event).
        self._tel_fired = None
        self._tel_scheduled = None
        self._tel_depth = None

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events."""
        return self._live

    def attach_telemetry(self, registry, prefix: str = "sim") -> None:
        """Record event counts and heap depth into ``registry``.

        Series: ``{prefix}_events_scheduled_total``,
        ``{prefix}_events_fired_total`` (counters) and
        ``{prefix}_heap_depth`` (gauge; its ``max`` is the high-water
        mark — the number churn-heavy runs previously inflated with
        inert timer chains).
        """
        self._tel_scheduled = registry.counter(
            f"{prefix}_events_scheduled_total", "events pushed on the heap"
        )
        self._tel_fired = registry.counter(
            f"{prefix}_events_fired_total", "event callbacks executed"
        )
        self._tel_depth = registry.gauge(
            f"{prefix}_heap_depth", "pending (non-cancelled) events"
        )

    def detach_telemetry(self) -> None:
        self._tel_fired = None
        self._tel_scheduled = None
        self._tel_depth = None

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` to fire at virtual time ``time``."""
        if math.isnan(time):
            raise SimulationError("cannot schedule at NaN time")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now={self._now}"
            )
        if math.isinf(time):
            # An event at +inf never fires; return an already-cancelled
            # handle so callers can treat lost messages uniformly.
            ev = _Event(time=time, seq=next(self._counter), callback=callback)
            ev.cancelled = True
            return EventHandle(ev)
        ev = _Event(
            time=float(time),
            seq=next(self._counter),
            callback=callback,
            owner=self,
        )
        heapq.heappush(self._heap, ev)
        self._live += 1
        if self._tel_scheduled is not None:
            self._tel_scheduled.inc()
            self._tel_depth.set(self._live)
        return EventHandle(ev)

    def schedule_after(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Fire the next event.  Returns False when nothing is pending."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if ev.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event heap delivered a past event")
            ev.fired = True
            self._live -= 1
            self._now = ev.time
            if self._tel_fired is not None:
                self._tel_fired.inc()
                self._tel_depth.set(self._live)
            ev.callback()
            return True
        return False

    def run_until(self, horizon: float) -> None:
        """Run all events with time ≤ ``horizon``; set ``now`` to horizon.

        Events scheduled beyond the horizon stay pending so the simulation
        can be resumed with a later horizon.
        """
        if horizon < self._now:
            raise SimulationError(
                f"horizon {horizon} is before now={self._now}"
            )
        if self._running:
            raise SimulationError("run_until called re-entrantly")
        self._running = True
        try:
            while self._heap:
                ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if ev.time > horizon:
                    break
                heapq.heappop(self._heap)
                ev.fired = True
                self._live -= 1
                self._now = ev.time
                if self._tel_fired is not None:
                    self._tel_fired.inc()
                    self._tel_depth.set(self._live)
                ev.callback()
            self._now = float(horizon)
        finally:
            self._running = False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` fired)."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired
