"""End-to-end experiment wiring on the discrete-event simulator.

Two run shapes cover the paper's evaluation:

* **failure-free runs** (:func:`run_failure_free`) — p never crashes;
  these produce the accuracy metrics (``T_MR``, ``T_M``, ``T_G``, ``P_A``,
  ``λ_M``, ``T_FG``), which the paper defines over failure-free runs;
* **crash runs** (:func:`run_crash_runs`) — p crashes at a (randomized)
  time; these measure the detection time ``T_D``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.base import HeartbeatFailureDetector
from repro.errors import InvalidParameterError
from repro.metrics.qos import AccuracyEstimate, estimate_accuracy
from repro.metrics.transitions import SUSPECT, OutputTrace
from repro.net.clocks import Clock, PerfectClock
from repro.net.delays import DelayDistribution
from repro.net.link import LossyLink
from repro.sim.engine import Simulator
from repro.sim.heartbeat import HeartbeatSender
from repro.sim.monitor import DetectorHost
from repro.sim.seeds import (
    STREAM_CRASH_RUN,
    STREAM_CRASH_TIMES,
    STREAM_FAILURE_FREE,
    derive_rng,
)

__all__ = [
    "SimulationConfig",
    "FailureFreeResult",
    "CrashRunResult",
    "run_failure_free",
    "run_crash_runs",
]

DetectorFactory = Callable[[], HeartbeatFailureDetector]


@dataclass
class SimulationConfig:
    """Parameters shared by all runs of an experiment.

    Attributes:
        eta: heartbeat inter-sending time η.
        delay: message-delay distribution D.
        loss_probability: message loss probability p_L.
        horizon: real-time length of each run.
        warmup: initial span excluded from accuracy estimates (steady-state
            guard; NFD needs only ``δ + η``).
        seed: base RNG seed; every run derives an independent stream.
        sender_clock / monitor_clock: local clock models for p and q.
        link_factory: optional ``rng -> link`` constructor.  When set,
            each run's link is built by this callable (from the run's
            own derived generator) instead of a plain
            :class:`~repro.net.link.LossyLink` — the seam through which
            a :class:`~repro.net.wan.RoutedWanLink` or any other
            LossyLink-compatible transport attaches to the runner.
            ``delay``/``loss_probability`` then describe the *intended*
            single-link abstraction (used by analyses and tables), not
            the constructed transport.
    """

    eta: float
    delay: DelayDistribution
    loss_probability: float = 0.0
    horizon: float = 1000.0
    warmup: float = 0.0
    seed: int = 0
    sender_clock: Optional[Clock] = None
    monitor_clock: Optional[Clock] = None
    link_factory: Optional[Callable[[np.random.Generator], object]] = None

    def __post_init__(self) -> None:
        if self.eta <= 0:
            raise InvalidParameterError(f"eta must be positive, got {self.eta}")
        if self.horizon <= 0:
            raise InvalidParameterError(
                f"horizon must be positive, got {self.horizon}"
            )
        if self.warmup < 0 or self.warmup >= self.horizon:
            raise InvalidParameterError(
                f"warmup must be in [0, horizon), got {self.warmup}"
            )


@dataclass
class FailureFreeResult:
    """Outcome of one failure-free (accuracy) run."""

    trace: OutputTrace
    accuracy: AccuracyEstimate
    heartbeats_sent: int
    heartbeats_delivered: int

    @property
    def empirical_loss_rate(self) -> float:
        if self.heartbeats_sent == 0:
            return 0.0
        return 1.0 - self.heartbeats_delivered / self.heartbeats_sent


@dataclass
class CrashRunResult:
    """Outcome of a batch of crash (detection-time) runs.

    ``detection_times[i]`` is ``inf`` when run *i* never suspected the
    crashed process within its horizon.  The summary statistics exclude
    those runs (instead of silently returning ``inf``) and report them
    via :attr:`n_undetected` — callers deciding whether a detection
    bound held must check both.
    """

    detection_times: np.ndarray
    crash_times: np.ndarray
    traces: list = field(repr=False, default_factory=list)

    @property
    def detected_times(self) -> np.ndarray:
        """Detection times of the runs that did detect the crash."""
        return self.detection_times[np.isfinite(self.detection_times)]

    @property
    def n_undetected(self) -> int:
        """Number of runs whose crash was never detected."""
        return int(np.sum(~np.isfinite(self.detection_times)))

    @property
    def n_premature(self) -> int:
        """Runs already suspecting at the crash (zero detection time).

        The detection time clamps to exactly ``0.0`` when the detector's
        last S-transition precedes the crash — the crash landed during a
        mistake, so the "detection" was premature rather than reactive.
        """
        return int(np.sum(self.detection_times == 0.0))

    @property
    def max_detection_time(self) -> float:
        """Max ``T_D`` over *detected* runs; NaN if none detected."""
        detected = self.detected_times
        return float(np.max(detected)) if detected.size else math.nan

    @property
    def mean_detection_time(self) -> float:
        """Mean ``T_D`` over *detected* runs; NaN if none detected."""
        detected = self.detected_times
        return float(np.mean(detected)) if detected.size else math.nan


def _build(
    config: SimulationConfig,
    detector: HeartbeatFailureDetector,
    rng: np.random.Generator,
    crash_time: Optional[float],
):
    sim = Simulator()
    if config.link_factory is not None:
        link = config.link_factory(rng)
    else:
        link = LossyLink(
            delay=config.delay,
            loss_probability=config.loss_probability,
            rng=rng,
        )
    host = DetectorHost(
        sim,
        detector,
        clock=config.monitor_clock,
        sender_clock=config.sender_clock,
    )
    sender = HeartbeatSender(
        sim,
        link,
        eta=config.eta,
        deliver=host.deliver,
        clock=config.sender_clock,
        crash_time=crash_time,
    )
    return sim, host, sender


def run_failure_free(
    detector_factory: DetectorFactory,
    config: SimulationConfig,
    run_index: int = 0,
) -> FailureFreeResult:
    """Run one failure-free simulation and estimate the accuracy metrics."""
    rng = derive_rng(config.seed, STREAM_FAILURE_FREE, run_index)
    detector = detector_factory()
    sim, host, sender = _build(config, detector, rng, crash_time=None)
    host.start()
    sender.start()
    sim.run_until(config.horizon)
    trace = host.finish()
    accuracy = estimate_accuracy(trace, warmup=config.warmup)
    return FailureFreeResult(
        trace=trace,
        accuracy=accuracy,
        heartbeats_sent=sender.sent_count,
        heartbeats_delivered=host.delivered_count,
    )


def _prepare_crash_runs(
    config: SimulationConfig,
    n_runs: int,
    crash_window: Optional[tuple],
    settle_time: Optional[float],
):
    """Validate inputs and draw the crash-time vector for a batch.

    Shared by the serial path below and :mod:`repro.sim.parallel`: the
    crash times are drawn *once*, from their own namespaced stream, so
    they are identical however the runs are later distributed.
    """
    if n_runs < 1:
        raise InvalidParameterError(f"n_runs must be >= 1, got {n_runs}")
    if crash_window is None:
        # Start no earlier than the warmup so the detector is in steady
        # state when the crash lands.
        base = max(config.horizon / 2.0, config.warmup)
        crash_window = (base, base + config.eta)
    lo, hi = crash_window
    if not (0 < lo <= hi):
        raise InvalidParameterError(f"bad crash window {crash_window}")
    if lo < config.warmup:
        raise InvalidParameterError(
            f"crash window {crash_window} starts inside the "
            f"warmup ({config.warmup}); the detector would still be in "
            "its transient when the crash lands"
        )
    settle = settle_time if settle_time is not None else config.horizon
    rng_crash = derive_rng(config.seed, STREAM_CRASH_TIMES)
    crash_times = rng_crash.uniform(lo, hi, size=n_runs)
    return crash_times, settle


def _run_single_crash(
    detector_factory: DetectorFactory,
    config: SimulationConfig,
    run_index: int,
    crash_time: float,
    settle: float,
    keep_trace: bool,
):
    """One crash run; returns ``(detection_time, trace_or_None)``.

    The run's stream is keyed by its absolute index, so the result is
    the same whether it executes serially or on any parallel worker.
    """
    rng = derive_rng(config.seed, STREAM_CRASH_RUN, run_index)
    detector = detector_factory()
    sim, host, sender = _build(config, detector, rng, crash_time=crash_time)
    host.start()
    sender.start()
    sim.run_until(crash_time + settle)
    trace = host.finish()
    if trace.current_output != SUSPECT:
        detection = math.inf
    else:
        transitions = trace.transitions
        final = transitions[-1].time if transitions else trace.start_time
        detection = max(0.0, final - crash_time)
    return detection, (trace if keep_trace else None)


def run_crash_runs(
    detector_factory: DetectorFactory,
    config: SimulationConfig,
    n_runs: int,
    crash_window: Optional[tuple] = None,
    settle_time: Optional[float] = None,
    keep_traces: bool = False,
) -> CrashRunResult:
    """Run ``n_runs`` crash simulations and measure detection times.

    Args:
        crash_window: real-time interval from which each run's crash time
            is drawn uniformly; defaults to
            ``[horizon/2, horizon/2 + eta]`` (shifted past the warmup if
            needed) so the crash phase relative to the heartbeat period
            is uniform (the worst case for the detection bound is a
            crash just after a send).
        settle_time: extra time simulated past the crash so the detector's
            output can become permanently ``S``; defaults to
            4·(detection bound guess) = ``4 · horizon`` is wasteful, so we
            default to ``horizon`` after the crash window.
        keep_traces: keep the full per-run traces (memory-heavy).

    ``T_D`` per run is the time from the crash to the final S-transition,
    ``inf`` if the detector still trusts p at the end of the run.  For a
    fan-out over worker processes with bit-identical results, see
    :func:`repro.sim.parallel.run_crash_runs_parallel`.
    """
    crash_times, settle = _prepare_crash_runs(
        config, n_runs, crash_window, settle_time
    )
    detections = np.empty(n_runs, dtype=float)
    traces = []
    for i in range(n_runs):
        detection, trace = _run_single_crash(
            detector_factory,
            config,
            i,
            float(crash_times[i]),
            settle,
            keep_traces,
        )
        detections[i] = detection
        if keep_traces:
            traces.append(trace)
    return CrashRunResult(
        detection_times=detections, crash_times=crash_times, traces=traces
    )
