"""The monitored process *p*: periodic heartbeats and crash injection.

p sends heartbeat ``m_i`` at *its local* time ``σ_i = i·η`` (i = 1, 2, …),
per Fig. 6/Fig. 9 line 1.  If a crash time is set, no message whose send
time is at or after the crash is sent — and, per Section 3.1, the fates of
messages already in flight are unaffected by the crash.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.errors import InvalidParameterError
from repro.net.clocks import Clock, PerfectClock
from repro.net.link import LossyLink
from repro.sim.engine import Simulator

__all__ = ["HeartbeatSender"]


class HeartbeatSender:
    """Periodic heartbeat sender with optional crash.

    Args:
        sim: the discrete-event simulator.
        link: the lossy link toward q.
        eta: inter-sending time η in p's local clock.
        deliver: callback invoked at the message's *arrival* (real) time as
            ``deliver(seq, send_local_time)``; not invoked for lost
            messages.
        clock: p's local clock (defaults to a perfect clock).
        crash_time: real time at which p crashes, or None.
        first_seq: sequence number of the first heartbeat (1 in the paper).
        origin: p-local time of the *first* send (``σ_{first_seq}``);
            defaults to ``first_seq · η`` so that ``σ_i = i·η`` as in the
            paper.  A later origin supports epoch restarts — e.g. the
            adaptive experiments stop one sender and start another at a
            new rate, continuing the sequence numbering.
        send_gate: optional map from a heartbeat's nominal real send
            time to the real time it actually leaves p.  The fault layer
            uses this for GC-pause-style stalls: a slot inside a stall
            window is deferred to the window's end (still carrying its
            nominal ``σ_i``), and the slots overtaken during the pause
            are skipped.  Must be deterministic and must never return a
            time before its argument; ``None`` (the default) sends every
            slot on time.
    """

    def __init__(
        self,
        sim: Simulator,
        link: LossyLink,
        eta: float,
        deliver: Callable[[int, float], None],
        clock: Optional[Clock] = None,
        crash_time: Optional[float] = None,
        first_seq: int = 1,
        origin: Optional[float] = None,
        send_gate: Optional[Callable[[float], float]] = None,
    ) -> None:
        if eta <= 0:
            raise InvalidParameterError(f"eta must be positive, got {eta}")
        if first_seq < 1:
            raise InvalidParameterError(f"first_seq must be >= 1, got {first_seq}")
        self._sim = sim
        self._link = link
        self._eta = float(eta)
        self._deliver = deliver
        self._clock = clock if clock is not None else PerfectClock()
        self._crash_time = math.inf if crash_time is None else float(crash_time)
        self._first_seq = int(first_seq)
        self._origin = (
            first_seq * float(eta) if origin is None else float(origin)
        )
        self._next_seq = int(first_seq)
        self._sent = 0
        self._started = False
        self._send_gate = send_gate
        # Links from the fault layer can fan one offered message out to
        # several delivery records (duplication); plain links keep the
        # single-record fast path.
        self._transmit_multi = getattr(link, "transmit_multi", None)

    @property
    def eta(self) -> float:
        return self._eta

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def crash_time(self) -> float:
        """Real crash time (``inf`` if p never crashes)."""
        return self._crash_time

    @property
    def sent_count(self) -> int:
        return self._sent

    def start(self) -> None:
        """Arm the first heartbeat send."""
        if self._started:
            raise InvalidParameterError("sender already started")
        self._started = True
        self._arm_next()

    def send_local_time(self, seq: int) -> float:
        """``σ_seq = origin + (seq − first_seq)·η`` in p's local clock.

        With the default origin this is the paper's ``σ_i = i·η``.
        """
        return self._origin + (seq - self._first_seq) * self._eta

    def stop(self) -> None:
        """Stop sending (epoch end); pending in-flight messages still arrive."""
        self._crash_time = min(self._crash_time, self._sim.now)

    @property
    def next_seq(self) -> int:
        """Sequence number the next heartbeat would carry."""
        return self._next_seq

    def _arm_next(self) -> None:
        # Skip send slots that are already in the past (a sender started
        # mid-schedule begins at its first future slot).
        while True:
            seq = self._next_seq
            real_send = self._clock.real_time(self.send_local_time(seq))
            if real_send >= self._sim.now:
                break
            self._next_seq += 1
        if real_send >= self._crash_time:
            return  # p has crashed; no further heartbeats
        if self._send_gate is not None:
            real_send = max(real_send, self._send_gate(real_send))
        self._sim.schedule_at(real_send, self._send)

    def _send(self) -> None:
        if self._sim.now >= self._crash_time:
            return  # crash/stop moved earlier after this send was armed
        seq = self._next_seq
        self._next_seq += 1
        send_local = self.send_local_time(seq)
        real_send = self._sim.now
        self._sent += 1
        if self._transmit_multi is not None:
            records = self._transmit_multi(seq, real_send)
        else:
            records = (self._link.transmit(seq, real_send),)
        for record in records:
            if not record.lost:
                self._sim.schedule_at(
                    record.arrival_time,
                    lambda s=seq, t=send_local: self._deliver(s, t),
                )
        self._arm_next()

    def crash_at(self, real_time: float) -> None:
        """Inject a crash at the given real time (must be in the future)."""
        if real_time < self._sim.now:
            raise InvalidParameterError(
                f"crash time {real_time} is in the past (now={self._sim.now})"
            )
        self._crash_time = float(real_time)
