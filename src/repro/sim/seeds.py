"""Namespaced, collision-free RNG stream derivation.

Every random stream in the simulation layer is keyed by a three-word
entropy tuple ``(seed, STREAM_TAG, index)`` fed to
:class:`numpy.random.SeedSequence`:

* ``seed`` — the experiment's base seed (``SimulationConfig.seed``);
* ``STREAM_TAG`` — a constant identifying the *shape* of the stream
  (failure-free run, crash run, crash-time draw, ...);
* ``index`` — the run/point index within that shape.

Why the tag word is load-bearing: the previous scheme derived
failure-free run *j* from ``SeedSequence([seed, j])`` and crash run *i*
from ``SeedSequence([seed, i + 1])``, so crash run 0 and failure-free
run 1 consumed the *same* random stream — correlating the detection-time
and accuracy estimates that the paper treats as independent.  Similarly
the crash-time draw used ``[seed, 0xC4A54]``, which collides with crash
run ``i = 0xC4A53``.  With a distinct tag in the middle word, streams of
different shapes can never share a key, and streams of the same shape
differ in the index word — the key sets are disjoint by construction for
*all* indices, not just the ones any one experiment happens to use.

This is the same guarantee ``SeedSequence.spawn`` provides, but keyed by
the *absolute* run index rather than by spawn order, which is what makes
parallel execution (:mod:`repro.sim.parallel`) bit-identical to serial:
a run's stream depends only on ``(seed, tag, index)``, never on which
worker or chunk computed it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import InvalidParameterError

__all__ = [
    "STREAM_FAILURE_FREE",
    "STREAM_CRASH_RUN",
    "STREAM_CRASH_TIMES",
    "STREAM_FASTSIM",
    "STREAM_FAULTS",
    "STREAM_LIVE",
    "STREAM_PATH_EMPIRICAL",
    "STREAM_WAN_CONGESTION",
    "stream_key",
    "seed_sequence",
    "derive_rng",
]

# Stream shape tags.  Values are arbitrary but pinned: changing any of
# them silently changes every derived stream, so they are asserted
# verbatim in tests/sim/test_parallel.py.
STREAM_FAILURE_FREE = 0xF1EE  # failure-free (accuracy) runs, by run index
STREAM_CRASH_RUN = 0xC0DE  # crash (detection-time) runs, by run index
STREAM_CRASH_TIMES = 0xC4A54  # the one-shot crash-time vector draw
STREAM_FASTSIM = 0xFA57  # vectorized simulators, by sweep-point index
STREAM_FAULTS = 0xFA17  # fault-injection draws (dup/reorder), by run index
STREAM_LIVE = 0x11FE  # live-runtime loopback links, by peer index
STREAM_PATH_EMPIRICAL = 0x7CDF  # PathDelay.to_empirical draws, by path seed
STREAM_WAN_CONGESTION = 0xC09E  # WAN latent congestion episodes, by run index


def stream_key(seed: int, stream: int, index: int = 0) -> Tuple[int, int, int]:
    """The entropy key for one stream; distinct for every (shape, index)."""
    if seed < 0:
        raise InvalidParameterError(f"seed must be >= 0, got {seed}")
    if stream < 0:
        raise InvalidParameterError(f"stream tag must be >= 0, got {stream}")
    if index < 0:
        raise InvalidParameterError(f"stream index must be >= 0, got {index}")
    return (int(seed), int(stream), int(index))


def seed_sequence(
    seed: int, stream: int, index: int = 0
) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` for one namespaced stream."""
    return np.random.SeedSequence(stream_key(seed, stream, index))


def derive_rng(seed: int, stream: int, index: int = 0) -> np.random.Generator:
    """An independent generator for one namespaced stream."""
    return np.random.default_rng(seed_sequence(seed, stream, index))
