"""Deterministic multiprocessing executor for experiment fan-out.

The paper's evaluation is embarrassingly parallel — hundreds of
independent crash runs, failure-free runs, and sweep points — but naive
parallelization breaks the one property this reproduction cannot give
up: *bit-identical results for the same seed*.  This module provides the
fan-out while keeping that guarantee, for any job count and any chunking:

* **Index-keyed streams.**  Every work item's RNG stream is derived from
  ``SeedSequence([seed, STREAM_TAG, index])`` (:mod:`repro.sim.seeds`),
  so a run's randomness depends only on its absolute index — never on
  which worker or chunk computed it.  Shared one-shot draws (the
  crash-time vector) happen once, in the parent, before the fan-out.
* **Chunked scheduling.**  Items are grouped into contiguous chunks
  (default: ~4 chunks per worker) and distributed dynamically; results
  are reassembled by index, so completion order is irrelevant.
* **Fork-based workers.**  Workers are forked, so detector factories may
  be arbitrary closures/lambdas; only chunk descriptors travel to the
  workers and only results travel back.  Where ``fork`` is unavailable
  (non-Unix platforms, daemon processes) execution silently falls back
  to in-process serial — which is bit-identical by construction.
* **Per-worker instrumentation.**  Each chunk reports the worker PID and
  its busy time; :class:`ParallelStats` aggregates them for the
  ``benchmarks/bench_parallel.py`` harness and ``--jobs`` progress
  reporting.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.telemetry.runtime import active as _telemetry_active
from repro.sim.runner import (
    CrashRunResult,
    DetectorFactory,
    FailureFreeResult,
    SimulationConfig,
    _prepare_crash_runs,
    _run_single_crash,
    run_failure_free,
)

__all__ = [
    "ChunkTiming",
    "ParallelStats",
    "resolve_jobs",
    "chunk_spans",
    "parallel_map",
    "run_crash_runs_parallel",
    "run_failure_free_parallel",
]

ProgressCallback = Callable[[int, int], None]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker count: ``None``/``0`` means all cores, otherwise ``jobs``."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise InvalidParameterError(f"jobs must be >= 0 or None, got {jobs}")
    return int(jobs)


def chunk_spans(n_items: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` spans covering ``range(n_items)``."""
    if chunk_size < 1:
        raise InvalidParameterError(
            f"chunk_size must be >= 1, got {chunk_size}"
        )
    return [
        (start, min(start + chunk_size, n_items))
        for start in range(0, n_items, chunk_size)
    ]


def default_chunk_size(n_items: int, jobs: int) -> int:
    """~4 chunks per worker: coarse enough to amortize IPC, fine enough
    to balance load when chunk costs vary."""
    return max(1, math.ceil(n_items / (jobs * 4)))


@dataclass(frozen=True)
class ChunkTiming:
    """Timing record for one executed chunk."""

    chunk: int  # chunk ordinal (by item order)
    start: int  # first item index
    stop: int  # one past the last item index
    pid: int  # worker process id (parent pid on the serial path)
    seconds: float  # busy wall time spent on this chunk


@dataclass
class ParallelStats:
    """Execution report for one fan-out."""

    jobs: int
    chunk_size: int
    wall_seconds: float
    chunks: List[ChunkTiming]

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def n_items(self) -> int:
        return sum(c.stop - c.start for c in self.chunks)

    @property
    def busy_seconds(self) -> float:
        """Total worker busy time (≈ serial time when load is balanced)."""
        return sum(c.seconds for c in self.chunks)

    def per_worker_seconds(self) -> Dict[int, float]:
        """Busy seconds per worker PID."""
        out: Dict[int, float] = {}
        for c in self.chunks:
            out[c.pid] = out.get(c.pid, 0.0) + c.seconds
        return out

    def summary(self) -> str:
        workers = self.per_worker_seconds()
        return (
            f"{self.n_items} items in {self.n_chunks} chunks "
            f"(chunk_size={self.chunk_size}) on {len(workers)} worker(s), "
            f"jobs={self.jobs}: wall {self.wall_seconds:.2f}s, "
            f"busy {self.busy_seconds:.2f}s"
        )


# --------------------------------------------------------------------- #
# Core chunk executor
# --------------------------------------------------------------------- #

# The per-item callable for the fan-out in flight.  Set in the parent
# immediately before the worker pool forks, so workers inherit it via
# copy-on-write memory — this is what lets detector factories be
# closures/lambdas without any pickling of the work payload.
_ITEM_FN: Optional[Callable[[int], Any]] = None


def _invoke_chunk(span: Tuple[int, int, int]):
    chunk_idx, start, stop = span
    t0 = time.perf_counter()
    fn = _ITEM_FN
    assert fn is not None, "worker forked without a payload"
    out = [fn(i) for i in range(start, stop)]
    return chunk_idx, start, stop, os.getpid(), time.perf_counter() - t0, out


def _fork_available() -> bool:
    try:
        if "fork" not in multiprocessing.get_all_start_methods():
            return False
        # Daemonic workers cannot have children: nested fan-out runs
        # serially inside an outer parallel region.
        return not multiprocessing.current_process().daemon
    except Exception:  # pragma: no cover - platform quirks
        return False


def _execute(
    item_fn: Callable[[int], Any],
    n_items: int,
    jobs: Optional[int],
    chunk_size: Optional[int],
    progress: Optional[ProgressCallback],
) -> Tuple[List[Any], ParallelStats]:
    """Run ``item_fn`` over ``range(n_items)``; results in item order.

    Deterministic by construction: ``item_fn`` must derive all of its
    randomness from the item index (see :mod:`repro.sim.seeds`), and the
    results list is reassembled by index, so jobs/chunking only affect
    wall time.
    """
    global _ITEM_FN
    jobs_resolved = max(1, min(resolve_jobs(jobs), n_items))
    if chunk_size is None:
        chunk_size = default_chunk_size(n_items, jobs_resolved)
    spans = [
        (ci, start, stop)
        for ci, (start, stop) in enumerate(chunk_spans(n_items, chunk_size))
    ]
    results: List[Any] = [None] * n_items
    timings: List[ChunkTiming] = []
    wall0 = time.perf_counter()
    use_pool = jobs_resolved > 1 and len(spans) > 1 and _fork_available()
    if not use_pool:
        for ci, start, stop in spans:
            t0 = time.perf_counter()
            results[start:stop] = [item_fn(i) for i in range(start, stop)]
            timings.append(
                ChunkTiming(
                    chunk=ci,
                    start=start,
                    stop=stop,
                    pid=os.getpid(),
                    seconds=time.perf_counter() - t0,
                )
            )
            if progress is not None:
                progress(len(timings), len(spans))
    else:
        ctx = multiprocessing.get_context("fork")
        _ITEM_FN = item_fn  # must be set before the pool forks
        try:
            with ctx.Pool(processes=jobs_resolved) as pool:
                for ci, start, stop, pid, secs, out in pool.imap_unordered(
                    _invoke_chunk, spans
                ):
                    results[start:stop] = out
                    timings.append(
                        ChunkTiming(
                            chunk=ci,
                            start=start,
                            stop=stop,
                            pid=pid,
                            seconds=secs,
                        )
                    )
                    if progress is not None:
                        progress(len(timings), len(spans))
        finally:
            _ITEM_FN = None
    timings.sort(key=lambda c: c.chunk)
    stats = ParallelStats(
        jobs=jobs_resolved,
        chunk_size=chunk_size,
        wall_seconds=time.perf_counter() - wall0,
        chunks=timings,
    )
    reg = _telemetry_active()
    if reg is not None:
        # Chunk timings are gathered in the parent, so this records even
        # when the items themselves ran in forked workers (whose own
        # process-global registries are discarded with the fork).
        reg.counter("parallel_items_total").inc(n_items)
        reg.counter("parallel_chunks_total").inc(len(timings))
        reg.gauge("parallel_jobs").set(jobs_resolved)
        chunk_hist = reg.histogram("parallel_chunk_seconds")
        for c in timings:
            chunk_hist.observe(c.seconds)
        reg.histogram("parallel_wall_seconds").observe(stats.wall_seconds)
    return results, stats


# --------------------------------------------------------------------- #
# Public fan-out APIs
# --------------------------------------------------------------------- #


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    with_stats: bool = False,
):
    """Map ``fn`` over ``items`` across worker processes, order-preserving.

    The experiments layer uses this for sweep-point fan-out (Fig. 12
    ``T_D^U`` grid, cutoff/window sweeps).  ``fn`` must be deterministic
    given its item (derive any randomness from per-item seeds); then the
    result is identical for every ``jobs``/``chunk_size`` combination.
    """
    items = list(items)
    if not items:
        empty_stats = ParallelStats(
            jobs=1, chunk_size=1, wall_seconds=0.0, chunks=[]
        )
        return ([], empty_stats) if with_stats else []

    def item_fn(i: int):
        return fn(items[i])

    results, stats = _execute(item_fn, len(items), jobs, chunk_size, progress)
    return (results, stats) if with_stats else results


def run_crash_runs_parallel(
    detector_factory: DetectorFactory,
    config: SimulationConfig,
    n_runs: int,
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    crash_window: Optional[tuple] = None,
    settle_time: Optional[float] = None,
    keep_traces: bool = False,
    progress: Optional[ProgressCallback] = None,
    with_stats: bool = False,
):
    """Fan :func:`repro.sim.runner.run_crash_runs` out over workers.

    Bit-identical to the serial function for the same config and seed:
    crash times come from one namespaced draw in the parent, and run
    *i*'s stream is keyed by ``i`` — so scheduling cannot change any
    result.  ``jobs=1`` runs in-process (no pool).
    """
    crash_times, settle = _prepare_crash_runs(
        config, n_runs, crash_window, settle_time
    )

    def item_fn(i: int):
        return _run_single_crash(
            detector_factory,
            config,
            i,
            float(crash_times[i]),
            settle,
            keep_traces,
        )

    outs, stats = _execute(item_fn, n_runs, jobs, chunk_size, progress)
    detections = np.fromiter(
        (d for d, _ in outs), dtype=float, count=n_runs
    )
    traces = [t for _, t in outs] if keep_traces else []
    result = CrashRunResult(
        detection_times=detections, crash_times=crash_times, traces=traces
    )
    return (result, stats) if with_stats else result


def run_failure_free_parallel(
    detector_factory: DetectorFactory,
    config: SimulationConfig,
    n_runs: int,
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    with_stats: bool = False,
):
    """Run ``n_runs`` failure-free runs (indices ``0..n_runs-1``) fanned
    out over workers; returns the :class:`FailureFreeResult` list in run
    order, bit-identical to calling :func:`run_failure_free` serially."""
    if n_runs < 1:
        raise InvalidParameterError(f"n_runs must be >= 1, got {n_runs}")

    def item_fn(i: int) -> FailureFreeResult:
        return run_failure_free(detector_factory, config, run_index=i)

    results, stats = _execute(item_fn, n_runs, jobs, chunk_size, progress)
    return (results, stats) if with_stats else results
