"""The monitoring process *q*: hosts a detector and records its output.

:class:`DetectorHost` adapts the simulator to the
:class:`~repro.core.base.DetectorRuntime` protocol *in q's local clock*
and records every output transition into an
:class:`~repro.metrics.transitions.OutputTrace` *in real time* — QoS
metrics are defined over real time regardless of how skewed q's clock is.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.base import Heartbeat, HeartbeatFailureDetector
from repro.metrics.transitions import OutputTrace
from repro.net.clocks import Clock, PerfectClock
from repro.sim.engine import EventHandle, Simulator

__all__ = ["DetectorHost"]


class _InertTimer:
    """A timer handle for a stopped host: never fires, cancel is a no-op."""

    __slots__ = ("time",)

    cancelled = True
    fired = False

    def __init__(self, time: float) -> None:
        self.time = time

    def cancel(self) -> None:
        pass


class DetectorHost:
    """Runs a failure detector inside the simulation.

    Args:
        sim: the discrete-event simulator.
        detector: an unbound detector instance.
        clock: q's local clock (defaults to perfect).
        sender_clock: p's local clock, used to translate the real send
            time into the message timestamp p would have written.
    """

    def __init__(
        self,
        sim: Simulator,
        detector: HeartbeatFailureDetector,
        clock: Optional[Clock] = None,
        sender_clock: Optional[Clock] = None,
    ) -> None:
        self._sim = sim
        self._detector = detector
        self._clock = clock if clock is not None else PerfectClock()
        self._sender_clock = (
            sender_clock if sender_clock is not None else PerfectClock()
        )
        self._trace = OutputTrace(
            start_time=sim.now, initial_output=detector.output
        )
        self._delivered = 0
        self._stopped = False
        # Timers the detector has armed through call_at; tracked so a
        # removed host can cancel its whole chain (each freshness-point
        # callback re-arms the next, so an orphaned detector would tick
        # in the simulator forever).
        self._timers: List[EventHandle] = []
        detector.bind(self, self._on_transition)

    # ------------------------------------------------------------------ #
    # DetectorRuntime protocol (local time)
    # ------------------------------------------------------------------ #

    def local_now(self) -> float:
        return self._clock.local_time(self._sim.now)

    def call_at(self, local_time: float, callback) -> EventHandle:
        real = self._clock.real_time(local_time)
        if self._stopped:
            # A stopped host arms nothing: handing the detector an inert
            # handle terminates its self-rescheduling timer chain.
            return _InertTimer(max(real, self._sim.now))
        # A timer in the past fires as soon as possible — the behaviour
        # of any real event loop.  This is what lets a detector started
        # mid-stream (late join) catch up through its overdue freshness
        # points instead of crashing.
        handle = self._sim.schedule_at(max(real, self._sim.now), callback)
        if len(self._timers) >= 8:
            self._timers = [
                h for h in self._timers if not (h.fired or h.cancelled)
            ]
        self._timers.append(handle)
        return handle

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    @property
    def detector(self) -> HeartbeatFailureDetector:
        return self._detector

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def delivered_count(self) -> int:
        return self._delivered

    @property
    def trace_start_time(self) -> float:
        """Real time the output trace (observation window) began."""
        return self._trace.start_time

    @property
    def trace_initial_output(self) -> str:
        return self._trace.initial_output

    @property
    def stopped(self) -> bool:
        return self._stopped

    def start(self) -> None:
        self._detector.start()

    def stop(self) -> None:
        """Neutralize the host: cancel pending timers, ignore deliveries.

        Called when the service removes or restarts a process — without
        this, the removed incarnation's detector keeps re-arming its
        freshness-point timer chain forever, so churn-heavy runs would
        accumulate one inert event chain per departed incarnation.
        Idempotent.
        """
        self._stopped = True
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()

    def deliver(self, seq: int, send_local_time: float) -> None:
        """Called by the sender machinery at the message's arrival time."""
        if self._stopped:
            return  # late arrival to a removed incarnation
        self._delivered += 1
        heartbeat = Heartbeat(
            seq=seq,
            send_local_time=send_local_time,
            receive_local_time=self.local_now(),
        )
        self._detector.on_heartbeat(heartbeat)

    def _on_transition(self, local_time: float, output: str) -> None:
        # The listener fires synchronously inside an event, so the real
        # time of the transition is simply the simulator's current time.
        if self._stopped:
            return  # trace already closed; stray event after stop()
        self._trace.record(self._sim.now, output)

    def finish(self) -> OutputTrace:
        """Close and return the output trace at the current time."""
        return self._trace.close(self._sim.now)
