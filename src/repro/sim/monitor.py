"""The monitoring process *q*: hosts a detector and records its output.

:class:`DetectorHost` adapts the simulator to the
:class:`~repro.core.base.DetectorRuntime` protocol *in q's local clock*
and records every output transition into an
:class:`~repro.metrics.transitions.OutputTrace` *in real time* — QoS
metrics are defined over real time regardless of how skewed q's clock is.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import Heartbeat, HeartbeatFailureDetector
from repro.metrics.transitions import OutputTrace
from repro.net.clocks import Clock, PerfectClock
from repro.sim.engine import EventHandle, Simulator

__all__ = ["DetectorHost"]


class DetectorHost:
    """Runs a failure detector inside the simulation.

    Args:
        sim: the discrete-event simulator.
        detector: an unbound detector instance.
        clock: q's local clock (defaults to perfect).
        sender_clock: p's local clock, used to translate the real send
            time into the message timestamp p would have written.
    """

    def __init__(
        self,
        sim: Simulator,
        detector: HeartbeatFailureDetector,
        clock: Optional[Clock] = None,
        sender_clock: Optional[Clock] = None,
    ) -> None:
        self._sim = sim
        self._detector = detector
        self._clock = clock if clock is not None else PerfectClock()
        self._sender_clock = (
            sender_clock if sender_clock is not None else PerfectClock()
        )
        self._trace = OutputTrace(
            start_time=sim.now, initial_output=detector.output
        )
        self._delivered = 0
        detector.bind(self, self._on_transition)

    # ------------------------------------------------------------------ #
    # DetectorRuntime protocol (local time)
    # ------------------------------------------------------------------ #

    def local_now(self) -> float:
        return self._clock.local_time(self._sim.now)

    def call_at(self, local_time: float, callback) -> EventHandle:
        real = self._clock.real_time(local_time)
        # A timer in the past fires as soon as possible — the behaviour
        # of any real event loop.  This is what lets a detector started
        # mid-stream (late join) catch up through its overdue freshness
        # points instead of crashing.
        return self._sim.schedule_at(max(real, self._sim.now), callback)

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    @property
    def detector(self) -> HeartbeatFailureDetector:
        return self._detector

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def delivered_count(self) -> int:
        return self._delivered

    def start(self) -> None:
        self._detector.start()

    def deliver(self, seq: int, send_local_time: float) -> None:
        """Called by the sender machinery at the message's arrival time."""
        self._delivered += 1
        heartbeat = Heartbeat(
            seq=seq,
            send_local_time=send_local_time,
            receive_local_time=self.local_now(),
        )
        self._detector.on_heartbeat(heartbeat)

    def _on_transition(self, local_time: float, output: str) -> None:
        # The listener fires synchronously inside an event, so the real
        # time of the transition is simply the simulator's current time.
        self._trace.record(self._sim.now, output)

    def finish(self) -> OutputTrace:
        """Close and return the output trace at the current time."""
        return self._trace.close(self._sim.now)
