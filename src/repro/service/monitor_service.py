"""Monitoring many processes with per-process detectors and links.

:class:`MonitorService` owns, for each monitored process, the full
two-process pipeline of the paper — heartbeat sender, lossy link,
detector host — and fans every output transition out to service-level
listeners as :class:`~repro.service.events.MonitorEvent`.

Per-process isolation matters: each link has its own loss probability
and delay distribution (a LAN peer and a WAN peer should not share a
configuration), and each detector can be configured against a different
QoS contract via the Section 4-6 configurators.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.base import HeartbeatFailureDetector
from repro.errors import InvalidParameterError, SimulationError
from repro.metrics.transitions import OutputTrace
from repro.net.clocks import Clock
from repro.net.delays import DelayDistribution
from repro.net.link import LossyLink
from repro.service.events import MonitorEvent
from repro.service.soa import (
    SimWheelScheduler,
    SoAMonitorHost,
    VectorMonitorEngine,
    supports_detector,
)
from repro.sim.engine import Simulator
from repro.sim.heartbeat import HeartbeatSender
from repro.sim.monitor import DetectorHost

__all__ = ["MonitoredProcess", "MonitorService"]

#: selectable monitor backends: ``"object"`` is the paper-faithful
#: detector-instance-per-sender path; ``"soa"`` keeps NFD-S/U/E state in
#: the shared :class:`~repro.service.soa.VectorMonitorEngine` tables.
ENGINES = ("object", "soa")

Listener = Callable[[MonitorEvent], None]


@dataclass
class MonitoredProcess:
    """Everything the service keeps per monitored process."""

    name: str
    sender: HeartbeatSender
    #: either a :class:`DetectorHost` (object backend) or a
    #: :class:`~repro.service.soa.SoAMonitorHost` (SoA backend); both
    #: expose the same surface (detector, deliver, stop, finish, …).
    host: object
    link: LossyLink
    incarnation: int = 0
    #: the fault engine driving this pipeline, when the process was
    #: registered with a scenario (its ``timeline`` segments the
    #: incarnation's QoS by fault window).
    scenario_engine: Optional[object] = None
    #: real time at which this incarnation crashes (``inf`` = never).
    #: A *scheduled* crash sets this to the future crash instant — the
    #: process is still live (and a suspicion still a mistake) until
    #: then, which is what the membership layer's spurious-change
    #: accounting compares against.
    crash_time: float = math.inf
    events: List[MonitorEvent] = field(default_factory=list)

    @property
    def detector(self) -> HeartbeatFailureDetector:
        return self.host.detector

    @property
    def output(self) -> str:
        return self.detector.output

    @property
    def trusted(self) -> bool:
        return self.detector.output == "T"

    @property
    def crashed(self) -> bool:
        """Whether a crash has been injected (now or scheduled).

        For "has it crashed *yet*" compare :attr:`crash_time` against
        the simulation clock: ``proc.crashed_by(sim.now)``.
        """
        return self.crash_time != math.inf

    def crashed_by(self, time: float) -> bool:
        """Whether this incarnation is actually down at ``time``."""
        return time >= self.crash_time


class MonitorService:
    """A registry of monitored processes sharing one simulator.

    Args:
        sim: the discrete-event simulator all pipelines run on.
        seed: base seed; each (process, incarnation) derives its own
            independent random stream.
        engine: ``"object"`` (default) hosts each sender in its own
            :class:`~repro.sim.monitor.DetectorHost`; ``"soa"`` hosts
            NFD-S/U/E senders in the shared vectorized
            :class:`~repro.service.soa.VectorMonitorEngine` (detectors
            the engine cannot vectorize transparently fall back to the
            object path).  Verdict streams are bit-identical either way;
            "soa" trades per-sender objects for NumPy tables and a
            single timer wheel, which is what lets one monitor track
            10^5+ senders.
    """

    def __init__(
        self, sim: Simulator, seed: int = 0, engine: str = "object"
    ) -> None:
        if engine not in ENGINES:
            raise InvalidParameterError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self._sim = sim
        self._seed = int(seed)
        self._engine_kind = engine
        self._soa: Optional[VectorMonitorEngine] = None
        self._processes: Dict[str, MonitoredProcess] = {}
        self._closed_traces: Dict[Tuple[str, int], OutputTrace] = {}
        self._closed_crash_times: Dict[Tuple[str, int], float] = {}
        self._listeners: List[Listener] = []
        self._started = False

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def engine(self) -> str:
        """The selected backend (``"object"`` or ``"soa"``)."""
        return self._engine_kind

    @property
    def soa_engine(self) -> Optional[VectorMonitorEngine]:
        """The shared SoA engine, if the service has built one."""
        return self._soa

    def _soa_engine(self) -> VectorMonitorEngine:
        if self._soa is None:
            self._soa = VectorMonitorEngine(SimWheelScheduler(self._sim))
        return self._soa

    @property
    def process_names(self) -> tuple:
        return tuple(sorted(self._processes))

    def process(self, name: str) -> MonitoredProcess:
        try:
            return self._processes[name]
        except KeyError:
            raise InvalidParameterError(f"unknown process {name!r}") from None

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def add_process(
        self,
        name: str,
        detector: HeartbeatFailureDetector,
        eta: float,
        delay: Optional[DelayDistribution] = None,
        loss_probability: float = 0.0,
        sender_clock: Optional[Clock] = None,
        monitor_clock: Optional[Clock] = None,
        incarnation: int = 0,
        scenario=None,
        link=None,
    ) -> MonitoredProcess:
        """Register a process and build its monitoring pipeline.

        If the service has already been started, the new pipeline starts
        immediately (processes can join a running system).

        The transport is declared either by ``delay`` (+
        ``loss_probability``), building the paper's
        :class:`~repro.net.link.LossyLink` from the per-(process,
        incarnation) stream, or by passing a pre-built LossyLink-
        compatible ``link`` — e.g. a
        :class:`~repro.net.wan.RoutedWanLink` relaying heartbeats across
        a multi-site topology.  Exactly one of the two must be given; a
        caller-provided link owns its randomness, so it must be
        constructed from a seeded generator for reproducible runs.

        ``scenario`` (a :class:`repro.faults.FaultScenario`) scripts
        faults onto this process's pipeline only: the link is wrapped in
        a :class:`repro.faults.FaultyLink` whose fault draws come from a
        per-(process, incarnation) ``STREAM_FAULTS`` stream, clocks are
        auto-upgraded to :class:`~repro.net.clocks.FaultableClock` where
        the scenario needs them, and the engine's timeline is available
        as ``proc.scenario_engine.timeline``.  Event times are absolute
        simulation times, so a process registered mid-run must use a
        scenario written for the current clock.
        """
        if name in self._processes:
            raise InvalidParameterError(
                f"process {name!r} already monitored; remove it first or "
                f"re-add under a new incarnation"
            )
        if (delay is None) == (link is None):
            raise InvalidParameterError(
                "pass exactly one of delay= (a LossyLink is built for "
                "the process) or link= (a pre-built transport)"
            )
        # zlib.crc32 is stable across processes (str hash() is salted by
        # PYTHONHASHSEED and would break run-to-run reproducibility).
        name_key = zlib.crc32(name.encode("utf-8"))
        if link is None:
            rng = np.random.default_rng(
                np.random.SeedSequence([self._seed, name_key, incarnation])
            )
            link = LossyLink(
                delay=delay, loss_probability=loss_probability, rng=rng
            )
        engine = None
        if scenario is not None:
            # Imported lazily: repro.faults sits above the service layer.
            from repro.faults.links import FaultyLink
            from repro.faults.runner import _resolve_clock
            from repro.faults.scenario import ScenarioEngine
            from repro.sim.seeds import STREAM_FAULTS

            fault_rng = np.random.default_rng(
                np.random.SeedSequence(
                    [self._seed, name_key, incarnation, STREAM_FAULTS]
                )
            )
            link = FaultyLink(link, fault_rng)
            sender_clock = _resolve_clock(sender_clock, scenario, "sender")
            monitor_clock = _resolve_clock(monitor_clock, scenario, "monitor")
        if self._engine_kind == "soa" and supports_detector(detector):
            host = SoAMonitorHost(
                self._soa_engine(),
                detector,
                clock=monitor_clock,
                sender_clock=sender_clock,
                incarnation=incarnation,
                label=name,
            )
        else:
            host = DetectorHost(
                self._sim,
                detector,
                clock=monitor_clock,
                sender_clock=sender_clock,
            )
        # A process joining mid-run keeps the paper's global schedule
        # σ_i = i·η but starts at the first index still in the future.
        first_seq = max(1, int(self._sim.now // eta) + 1)
        sender = HeartbeatSender(
            self._sim,
            link,
            eta=eta,
            deliver=host.deliver,
            clock=sender_clock,
            first_seq=first_seq,
            origin=first_seq * eta,
            send_gate=scenario.send_gate() if scenario is not None else None,
        )
        if scenario is not None and len(scenario):
            engine = ScenarioEngine(
                self._sim,
                scenario,
                link,
                sender_clock=sender_clock,
                monitor_clock=monitor_clock,
                label=f"{name}#{incarnation}",
            )
            engine.install()
        proc = MonitoredProcess(
            name=name, sender=sender, host=host, link=link,
            incarnation=incarnation, scenario_engine=engine,
        )
        self._processes[name] = proc
        # Re-route the host's transition recording through the service so
        # listeners see named events (the trace still records too).
        if isinstance(host, SoAMonitorHost):
            host.listener = self._make_listener(proc, None)
        else:
            detector._listener = self._make_listener(proc, detector._listener)
        if self._started:
            host.start()
            sender.start()
        return proc

    def _make_listener(self, proc: MonitoredProcess, inner):
        def listener(local_time: float, output: str) -> None:
            if inner is not None:
                inner(local_time, output)
            if self._processes.get(proc.name) is not proc:
                # A removed/replaced incarnation's detector may still
                # fire timers; its transitions must not be attributed to
                # the current incarnation.
                return
            event = MonitorEvent(
                time=self._sim.now,
                process=proc.name,
                output=output,
                incarnation=proc.incarnation,
            )
            proc.events.append(event)
            for callback in self._listeners:
                callback(event)

        return listener

    def add_process_with_contract(
        self,
        name: str,
        contract,
        delay: DelayDistribution,
        loss_probability: float = 0.0,
        sender_clock: Optional[Clock] = None,
        monitor_clock: Optional[Clock] = None,
    ) -> MonitoredProcess:
        """Register a process by *QoS contract* rather than by detector.

        The Section 4 configurator translates the contract plus the
        link's known behaviour into an NFD-S and the matching heartbeat
        rate (the two are inseparable).  Raises
        :class:`~repro.errors.QoSUnachievableError` when the contract is
        impossible on this link — for *any* failure detector.
        """
        from repro.service.contracts import detector_for_contract

        configured = detector_for_contract(contract, loss_probability, delay)
        return self.add_process(
            name,
            configured.detector,
            eta=configured.eta,
            delay=delay,
            loss_probability=loss_probability,
            sender_clock=sender_clock,
            monitor_clock=monitor_clock,
        )

    def restart_process(
        self,
        name: str,
        detector: HeartbeatFailureDetector,
        eta: float,
        delay: DelayDistribution,
        loss_probability: float = 0.0,
    ) -> MonitoredProcess:
        """Re-admit a (crashed) process under a new incarnation.

        Footnote 2 of the paper: crashes are permanent — "a process that
        recovers from a crash assumes a new identity."  The service
        models that by replacing the old pipeline with a fresh one whose
        incarnation counter is bumped; higher layers see a leave (if the
        old incarnation was still trusted) followed by a join.
        """
        old = self.process(name)
        incarnation = old.incarnation + 1
        self.remove_process(name)
        return self.add_process(
            name,
            detector,
            eta=eta,
            delay=delay,
            loss_probability=loss_probability,
            incarnation=incarnation,
        )

    def remove_process(self, name: str) -> None:
        """Stop tracking a process.  **Idempotent**: removing a process
        that is not (or no longer) monitored is a no-op, so listeners
        reacting to the same transition cannot double-remove under
        churn.

        A final synthetic S event is published so higher layers (e.g.
        group membership) see the departure.  The incarnation's output
        trace is closed *and retained* (see :meth:`finish`) — mistakes
        made by departed incarnations stay in the QoS accounting — and
        the host's pending timer chain is cancelled (object backend) or
        its engine row retired (SoA backend), so a removed sender can
        never fire a final post-removal transition and churn-heavy runs
        do not accumulate inert simulator events.
        """
        proc = self._processes.get(name)
        if proc is None:
            return
        proc.sender.stop()  # no further heartbeats from this incarnation
        event = MonitorEvent(
            time=self._sim.now,
            process=name,
            output="S",
            administrative=True,
            incarnation=proc.incarnation,
        )
        proc.events.append(event)
        for callback in self._listeners:
            callback(event)
        self._closed_traces[(name, proc.incarnation)] = proc.host.finish()
        self._closed_crash_times[(name, proc.incarnation)] = proc.crash_time
        proc.host.stop()  # cancel the detector's timer chain
        del self._processes[name]

    # ------------------------------------------------------------------ #
    # Operation
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start all registered pipelines."""
        if self._started:
            raise SimulationError("service already started")
        self._started = True
        for proc in self._processes.values():
            proc.host.start()
            proc.sender.start()

    def subscribe(self, listener: Listener) -> None:
        """Register a callback for every detector transition."""
        self._listeners.append(listener)

    def crash(self, name: str, at_time: Optional[float] = None) -> None:
        """Crash a monitored process now (or at a future real time).

        The crash *time* — not a boolean — is recorded on the process:
        a suspicion raised before a scheduled crash takes effect is
        still a detector mistake, and the membership layer counts it as
        spurious by comparing the event time against ``crash_time``.
        """
        proc = self.process(name)
        when = self._sim.now if at_time is None else float(at_time)
        proc.sender.crash_at(when)
        proc.crash_time = min(proc.crash_time, when)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def output(self, name: str) -> str:
        """Current detector output for one process."""
        return self.process(name).output

    def trusted_set(self) -> frozenset:
        """Names of all currently trusted processes."""
        return frozenset(
            name for name, p in self._processes.items() if p.trusted
        )

    def suspected_set(self) -> frozenset:
        """Names of all currently suspected processes."""
        return frozenset(
            name for name, p in self._processes.items() if not p.trusted
        )

    @property
    def closed_traces(self) -> Dict[Tuple[str, int], OutputTrace]:
        """Traces of incarnations already removed/restarted, keyed by
        ``(name, incarnation)``."""
        return dict(self._closed_traces)

    def finish(self) -> Dict[Tuple[str, int], OutputTrace]:
        """Close and return the output traces of *every* incarnation.

        Keys are ``(name, incarnation)``: live pipelines are closed at
        the current time, and incarnations departed via
        :meth:`remove_process`/:meth:`restart_process` are included with
        the trace closed at their departure — so mistakes made by old
        incarnations do not vanish from the QoS accounting.
        """
        out = dict(self._closed_traces)
        for name, proc in self._processes.items():
            out[(name, proc.incarnation)] = proc.host.finish()
        return out

    def crash_times(self) -> Dict[Tuple[str, int], float]:
        """Real crash instants for every incarnation ever monitored,
        keyed like :meth:`finish` (``inf`` = never crashed)."""
        out = dict(self._closed_crash_times)
        for name, proc in self._processes.items():
            out[(name, proc.incarnation)] = proc.crash_time
        return out

    def recovery_traces(self):
        """Stitch every incarnation into per-identity recovery traces.

        Returns ``{name: RecoveryTrace}`` combining the closed traces of
        departed incarnations with the live ones (closed at the current
        time, like :meth:`finish`) and the real crash instants recorded
        by :meth:`crash`.  This is the input to the crash-recovery QoS
        estimators in :mod:`repro.metrics.recovery` — suspicion while an
        identity was genuinely down is not charged as a mistake.

        Like :meth:`finish`, this is a final snapshot: live traces are
        closed at ``sim.now``.
        """
        from repro.metrics.recovery import stitch_recovery_traces

        return stitch_recovery_traces(self.finish(), self.crash_times())
