"""Vectorized many-sender monitor core: SoA state tables + one timer wheel.

The paper's algorithms are defined per monitored process, and the object
backend mirrors that: one detector instance, one freshness-point timer
chain, and one host per sender.  That design caps a single monitor at a
few thousand senders — the per-sender ``call_at`` chains alone put one
live simulator/loop event per sender per ``η`` on the heap.

:class:`VectorMonitorEngine` replaces the object-per-sender hot path
with a struct-of-arrays core:

* **state tables** — per-sender NFD-S/U/E state (highest sequence
  number, next freshness index, next freshness point, current verdict,
  incarnation, delivered count, NFD-E's normalized-arrival window) lives
  in NumPy arrays indexed by a dense integer *row* id;
* **one timer wheel** — instead of N independent timer chains there is
  a single deadline heap with *one* scheduled wakeup (the earliest
  deadline).  Same-(η, δ) NFD-S senders on perfect clocks share a
  *cohort*: the whole cohort's freshness point ``τ_i`` is one heap entry
  processed with one vectorized pass, so the wakeup count is O(ticks),
  not O(senders × ticks);
* **batched ingestion** — :meth:`VectorMonitorEngine.ingest` consumes a
  time-sorted array of heartbeats and processes the (dominant) trusted
  NFD-S rows with ``np.maximum.at`` between wheel ticks, reusing the
  batched-kernel idiom of :mod:`repro.sim.batch`.

Correctness bar: the engine produces **bit-identical verdict streams**
to the object backend — same transition times, same outputs, same
ordering — which the dual-engine suites in ``tests/service`` pin under
churn, restarts, scheduled crashes and fault scenarios.

Canonical tie ordering (satellite of ISSUE 6): when several freshness
deadlines land on the *identical* timestamp, they are processed in
``(time, row id)`` order, where row ids are assigned in registration
order; and deadlines at time ``t`` are processed before heartbeats
arriving at ``t``.  The object backend produces the same order because
each detector re-arms its next freshness timer from inside the previous
one (arm order = registration order, and with ``δ < η`` the timer is
always armed before a colliding delivery is scheduled).  The only
divergence is the contrived ``δ ≥ η`` configuration with a heartbeat
arrival *exactly* equal to a freshness point, where the object path
lets the delivery win; the engine keeps the deadline-first rule.

The engine is scheduler-agnostic: the simulator backend drives it
through :class:`SimWheelScheduler`, the live runtime through
:class:`repro.live.soa.LoopWheelScheduler`, and batch callers (the
many-senders benchmark) through :class:`ManualScheduler` with explicit
arrival times.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.base import HeartbeatFailureDetector
from repro.core.nfd_e import NFDE
from repro.core.nfd_s import NFDS
from repro.core.nfd_u import NFDU
from repro.errors import InvalidParameterError, SimulationError
from repro.metrics.transitions import SUSPECT, TRUST
from repro.net.clocks import Clock, PerfectClock

__all__ = [
    "VectorMonitorEngine",
    "SimWheelScheduler",
    "ManualScheduler",
    "SoAMonitorHost",
    "supports_detector",
]

#: detector kinds held in the state tables
KIND_NFDS = 0
KIND_NFDU = 1
KIND_NFDE = 2

#: heap-entry discriminators (second tuple element; value irrelevant to
#: semantics — slices are gathered whole — but keeps tuples comparable)
_ENTRY_ROW = 0
_ENTRY_COHORT = 1

#: transition sink signature: (real_time, local_time, "T"/"S")
TransitionSink = Callable[[float, float, str], None]


def supports_detector(detector: HeartbeatFailureDetector) -> bool:
    """Whether the SoA engine can host this detector natively.

    The engine vectorizes the paper's three NFD algorithms.  Other
    detectors (adaptive, φ-accrual, …) fall back to the object-per-
    sender host even under ``engine="soa"``.
    """
    return isinstance(detector, (NFDS, NFDU, NFDE))


# ---------------------------------------------------------------------- #
# Schedulers
# ---------------------------------------------------------------------- #


class SimWheelScheduler:
    """Drives the wheel from a :class:`~repro.sim.engine.Simulator`.

    The engine keeps at most one armed wakeup; re-arming cancels the
    previous simulator event, so the wheel contributes O(1) live events
    to the heap regardless of sender count.
    """

    def __init__(self, sim) -> None:
        self._sim = sim
        self._handle = None

    def now(self) -> float:
        return self._sim.now

    def wake_at(self, time: float, callback: Callable[[], None]) -> None:
        if self._handle is not None:
            self._handle.cancel()
        self._handle = self._sim.schedule_at(max(time, self._sim.now), callback)


class ManualScheduler:
    """A scheduler for batch drivers: time advances only via ingestion.

    Wakeups are never armed — callers are expected to push time forward
    explicitly with :meth:`VectorMonitorEngine.ingest` /
    :meth:`VectorMonitorEngine.advance`.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.time = float(start)

    def now(self) -> float:
        return self.time

    def wake_at(self, time: float, callback: Callable[[], None]) -> None:
        pass  # batch drivers advance the wheel themselves


class _Cohort:
    """All perfect-clock NFD-S rows sharing one (η, δ) freshness grid."""

    __slots__ = ("eta", "delta", "rows", "n", "tick", "armed")

    def __init__(self, eta: float, delta: float) -> None:
        self.eta = eta
        self.delta = delta
        self.rows = np.empty(8, dtype=np.int64)
        self.n = 0
        self.tick = 0  # next freshness index with a pushed heap entry
        self.armed = False

    def add(self, row: int) -> None:
        if self.n == len(self.rows):
            grown = np.empty(2 * len(self.rows), dtype=np.int64)
            grown[: self.n] = self.rows[: self.n]
            self.rows = grown
        self.rows[self.n] = row
        self.n += 1

    def members(self) -> np.ndarray:
        return self.rows[: self.n]

    def freshness(self, i: int) -> float:
        return i * self.eta + self.delta


class VectorMonitorEngine:
    """Struct-of-arrays monitor core for NFD-S / NFD-U / NFD-E senders.

    Args:
        scheduler: wheel driver providing ``now()`` and ``wake_at()``.
        record_transitions: keep every transition in
            :attr:`transition_log` as ``(time, row, output)`` — for
            identity tests and benchmarks that run without sinks.

    Rows are registered with :meth:`register` (a fresh, unbound detector
    instance acts as the parameter spec), armed with :meth:`start_row`,
    fed through :meth:`deliver` (scalar) or :meth:`ingest` (batched,
    time-sorted), and retired with :meth:`remove` — which is idempotent
    and guarantees no further transitions are emitted for the row, even
    for deadlines already due in the wheel (the churn race the object
    backend guards with ``DetectorHost.stop``).
    """

    def __init__(self, scheduler, *, record_transitions: bool = False) -> None:
        self._scheduler = scheduler
        self._heap: List[Tuple] = []
        self._armed: Optional[float] = None
        self._time = float(scheduler.now())
        self._n = 0
        cap = 64
        self._kind = np.zeros(cap, dtype=np.int8)
        self._active = np.zeros(cap, dtype=bool)
        self._trusted = np.zeros(cap, dtype=bool)
        self._eta = np.zeros(cap, dtype=np.float64)
        self._shift = np.zeros(cap, dtype=np.float64)  # δ (S) or α (U/E)
        self._max_seq = np.zeros(cap, dtype=np.int64)  # max seq (S) / ℓ (U/E)
        self._next_check = np.zeros(cap, dtype=np.int64)  # S freshness index
        self._tau_next = np.zeros(cap, dtype=np.float64)  # U/E τ_{ℓ+1} (local)
        self._gen = np.zeros(cap, dtype=np.int64)  # U/E timer generation
        self._incarnation = np.zeros(cap, dtype=np.int64)
        self._delivered = np.zeros(cap, dtype=np.int64)
        # NFD-E normalized-arrival windows (compact slots, only E rows)
        self._win_slot = np.full(cap, -1, dtype=np.int64)
        self._win_width = 0
        self._win_rows = 0
        self._win_buf = np.zeros((0, 0), dtype=np.float64)
        self._win_count = np.zeros(0, dtype=np.int64)
        self._win_head = np.zeros(0, dtype=np.int64)
        self._win_sum = np.zeros(0, dtype=np.float64)
        self._win_len = np.zeros(0, dtype=np.int64)
        # Per-row Python-object state (cold; scalar paths only)
        self._clocks: List[Optional[Clock]] = []
        self._sinks: List[Optional[TransitionSink]] = []
        self._ea_fns: List[Optional[Callable[[int], float]]] = []
        self._labels: List[str] = []
        self._cohorts: Dict[Tuple[float, float], _Cohort] = {}
        self.transition_log: Optional[List[Tuple[float, int, str]]] = (
            [] if record_transitions else None
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def scheduler(self):
        return self._scheduler

    @property
    def now(self) -> float:
        """Engine time: the later of the wheel's progress and the
        scheduler clock (batch drivers may run ahead of the latter)."""
        return max(self._time, self._scheduler.now())

    @property
    def n_rows(self) -> int:
        """Rows ever registered (row ids are never reused)."""
        return self._n

    @property
    def n_active(self) -> int:
        return int(np.count_nonzero(self._active[: self._n]))

    @property
    def pending_deadlines(self) -> int:
        """Heap entries (including lazily-invalidated ones)."""
        return len(self._heap)

    def output_char(self, row: int) -> str:
        return TRUST if self._trusted[row] else SUSPECT

    def is_active(self, row: int) -> bool:
        return bool(self._active[row])

    def delivered_count(self, row: int) -> int:
        return int(self._delivered[row])

    def incarnation(self, row: int) -> int:
        return int(self._incarnation[row])

    def trusted_rows(self) -> np.ndarray:
        """Row ids currently active and trusting."""
        mask = self._active[: self._n] & self._trusted[: self._n]
        return np.nonzero(mask)[0]

    # ------------------------------------------------------------------ #
    # Registration / removal
    # ------------------------------------------------------------------ #

    def _grow(self) -> None:
        cap = 2 * len(self._kind)
        for name in (
            "_kind",
            "_active",
            "_trusted",
            "_eta",
            "_shift",
            "_max_seq",
            "_next_check",
            "_tau_next",
            "_gen",
            "_incarnation",
            "_delivered",
            "_win_slot",
        ):
            old = getattr(self, name)
            grown = np.zeros(cap, dtype=old.dtype)
            if name == "_win_slot":
                grown.fill(-1)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    def _alloc_window(self, row: int, window: int) -> None:
        if window > self._win_width:
            width = max(window, 2 * self._win_width, 8)
            grown = np.zeros((max(len(self._win_count), 8), width))
            grown[: self._win_rows, : self._win_width] = self._win_buf[
                : self._win_rows
            ]
            self._win_buf = grown
            self._win_width = width
        if self._win_rows == len(self._win_count):
            cap = max(2 * len(self._win_count), 8)
            for name in ("_win_count", "_win_head", "_win_len"):
                old = getattr(self, name)
                grown = np.zeros(cap, dtype=np.int64)
                grown[: self._win_rows] = old[: self._win_rows]
                setattr(self, name, grown)
            grown_sum = np.zeros(cap)
            grown_sum[: self._win_rows] = self._win_sum[: self._win_rows]
            self._win_sum = grown_sum
            if self._win_buf.shape[0] < cap:
                grown_buf = np.zeros((cap, self._win_width))
                grown_buf[: self._win_rows] = self._win_buf[: self._win_rows]
                self._win_buf = grown_buf
        slot = self._win_rows
        self._win_rows += 1
        self._win_len[slot] = window
        self._win_slot[row] = slot

    def register(
        self,
        detector: HeartbeatFailureDetector,
        *,
        clock: Optional[Clock] = None,
        on_transition: Optional[TransitionSink] = None,
        incarnation: int = 0,
        label: str = "",
    ) -> int:
        """Add a sender row; the detector instance is the parameter spec.

        The detector must be fresh (unbound, unstarted): the engine owns
        the state from here on, and the instance is only read for its
        parameters (η, δ/α, window, first_seq).
        """
        if not supports_detector(detector):
            raise InvalidParameterError(
                f"SoA engine does not support {type(detector).__name__}; "
                f"use the object backend for this detector"
            )
        if detector._runtime is not None or detector._started:
            raise SimulationError(
                "detector already bound/started; the SoA engine needs a "
                "fresh instance as its parameter spec"
            )
        if self._n == len(self._kind):
            self._grow()
        row = self._n
        self._n += 1
        self._active[row] = True
        self._trusted[row] = False  # paper detectors start at S
        self._eta[row] = detector.eta
        self._incarnation[row] = incarnation
        self._delivered[row] = 0
        self._clocks.append(None if clock is None else clock)
        self._sinks.append(on_transition)
        self._labels.append(label)
        if isinstance(detector, NFDE):
            self._kind[row] = KIND_NFDE
            self._shift[row] = detector.alpha
            self._max_seq[row] = detector._first_seq - 1  # ℓ
            self._tau_next[row] = 0.0
            self._ea_fns.append(None)
            self._alloc_window(row, detector.estimator.window)
        elif isinstance(detector, NFDU):
            self._kind[row] = KIND_NFDU
            self._shift[row] = detector.alpha
            self._max_seq[row] = detector._first_seq - 1  # ℓ
            self._tau_next[row] = 0.0
            self._ea_fns.append(detector._expected_arrival)
        else:
            self._kind[row] = KIND_NFDS
            self._shift[row] = detector.delta
            self._max_seq[row] = detector._first_seq - 1
            self._next_check[row] = detector._first_seq
            self._ea_fns.append(None)
        return row

    def remove(self, row: int) -> None:
        """Retire a row.  **Idempotent**; no transition is ever emitted
        for the row after this returns — deadlines already due in the
        wheel are invalidated, the SoA analogue of cancelling a removed
        sender's timer chain."""
        if row < 0 or row >= self._n or not self._active[row]:
            return
        self._active[row] = False
        self._gen[row] += 1

    # ------------------------------------------------------------------ #
    # Clock helpers (scalar paths)
    # ------------------------------------------------------------------ #

    def _local(self, row: int, real: float) -> float:
        clock = self._clocks[row]
        return real if clock is None else clock.local_time(real)

    def _real(self, row: int, local: float) -> float:
        clock = self._clocks[row]
        return local if clock is None else clock.real_time(local)

    # ------------------------------------------------------------------ #
    # Arming
    # ------------------------------------------------------------------ #

    def start_row(self, row: int) -> None:
        """Arm the row's initial freshness deadline (detector start)."""
        if not self._active[row]:
            return
        now_real = self.now
        self._time = max(self._time, now_real)
        kind = self._kind[row]
        if kind == KIND_NFDS:
            eta = float(self._eta[row])
            delta = float(self._shift[row])
            if self._clocks[row] is None:
                # Catch a stale first_seq up to the present (the object
                # host replays overdue freshness points asap; nothing is
                # emitted because the initial output is already S and no
                # heartbeat can have arrived before start).
                while self._next_check[row] * eta + delta <= now_real:
                    self._next_check[row] += 1
                self._join_cohort(row, eta, delta)
            else:
                i = int(self._next_check[row])
                real = max(self._real(row, i * eta + delta), self._time)
                heapq.heappush(self._heap, (real, _ENTRY_ROW, row, i))
        else:
            # NFD-U/E: τ_0 = 0; arm only if the local clock is behind it.
            if self._tau_next[row] > self._local(row, now_real):
                real = max(self._real(row, self._tau_next[row]), self._time)
                self._gen[row] += 1
                heapq.heappush(
                    self._heap, (real, _ENTRY_ROW, row, -int(self._gen[row]))
                )
        self._request_wakeup()

    def _join_cohort(self, row: int, eta: float, delta: float) -> None:
        key = (eta, delta)
        cohort = self._cohorts.get(key)
        if cohort is None:
            cohort = _Cohort(eta, delta)
            self._cohorts[key] = cohort
        cohort.add(row)
        first = int(self._next_check[row])
        if not cohort.armed:
            cohort.tick = first
            cohort.armed = True
            heapq.heappush(
                self._heap,
                (cohort.freshness(first), _ENTRY_COHORT, key, first),
            )
        # An armed cohort's next tick is always <= any legal new member's
        # first index (first freshness points are in the future), so the
        # member is picked up when the shared grid reaches it.

    def _request_wakeup(self) -> None:
        if not self._heap:
            return
        t = self._heap[0][0]
        if self._armed is not None and self._armed <= t:
            return
        self._armed = t
        self._scheduler.wake_at(t, self._on_wake)

    def _on_wake(self) -> None:
        self._armed = None
        self.advance(self._scheduler.now())
        self._request_wakeup()

    # ------------------------------------------------------------------ #
    # Wheel
    # ------------------------------------------------------------------ #

    def advance(self, time: float) -> None:
        """Process every freshness deadline with ``deadline <= time``.

        Deadlines sharing a timestamp are gathered into one slice and
        their transitions emitted in canonical ``(time, row)`` order.
        """
        heap = self._heap
        while heap and heap[0][0] <= time:
            t0 = heap[0][0]
            entries = []
            while heap and heap[0][0] == t0:
                entries.append(heapq.heappop(heap))
            self._time = max(self._time, t0)
            self._process_slice(t0, entries)
        self._time = max(self._time, time)

    def _process_slice(self, t0: float, entries: List[Tuple]) -> None:
        suspects: List[int] = []
        rearm: List[Tuple] = []
        for entry in entries:
            _, etype, a, b = entry
            if etype == _ENTRY_COHORT:
                cohort = self._cohorts[a]
                tick = b
                if tick != cohort.tick:
                    continue  # superseded entry
                members = cohort.members()
                alive = members[self._active[members]]
                if alive.size == 0:
                    cohort.armed = False
                    cohort.n = 0
                    continue
                if alive.size * 2 < cohort.n:
                    cohort.rows = alive.copy()
                    cohort.n = alive.size
                    alive = cohort.members()
                due = alive[self._next_check[alive] == tick]
                if due.size:
                    stale = due[self._max_seq[due] < tick]
                    if stale.size:
                        newly = stale[self._trusted[stale]]
                        if newly.size:
                            self._trusted[newly] = False
                            suspects.extend(int(r) for r in newly)
                    self._next_check[due] = tick + 1
                cohort.tick = tick + 1
                rearm.append(
                    (cohort.freshness(tick + 1), _ENTRY_COHORT, a, tick + 1)
                )
            else:
                row = a
                if not self._active[row]:
                    continue
                if b >= 0:
                    # NFD-S (non-perfect clock): b is the freshness index.
                    if b != self._next_check[row]:
                        continue
                    if self._max_seq[row] < b and self._trusted[row]:
                        self._trusted[row] = False
                        suspects.append(row)
                    self._next_check[row] = b + 1
                    eta = float(self._eta[row])
                    delta = float(self._shift[row])
                    real = max(
                        self._real(row, (b + 1) * eta + delta), t0
                    )
                    rearm.append((real, _ENTRY_ROW, row, b + 1))
                else:
                    # NFD-U/E expiry: -b is the arming generation.
                    if -b != self._gen[row]:
                        continue  # cancelled by a later heartbeat
                    if self._trusted[row]:
                        self._trusted[row] = False
                        suspects.append(row)
        for item in rearm:
            heapq.heappush(self._heap, item)
        if suspects:
            suspects.sort()
            for row in suspects:
                self._emit(row, t0, SUSPECT)

    def _emit(self, row: int, real: float, output: str) -> None:
        if not self._active[row]:
            return  # removed by a listener earlier in this slice
        if self.transition_log is not None:
            self.transition_log.append((real, row, output))
        sink = self._sinks[row]
        if sink is not None:
            sink(real, self._local(row, real), output)

    # ------------------------------------------------------------------ #
    # Scalar delivery
    # ------------------------------------------------------------------ #

    @staticmethod
    def _window_index(now: float, eta: float, delta: float) -> int:
        """NFD-S window index i with τ_i <= now < τ_{i+1} (float-exact
        replica of :meth:`NFDS._current_window_index`)."""
        i = math.floor((now - delta) / eta)
        while i * eta + delta > now:
            i -= 1
        while (i + 1) * eta + delta <= now:
            i += 1
        return i if i > 0 else 0

    def deliver(
        self,
        row: int,
        seq: int,
        send_local_time: float = 0.0,
        at_real: Optional[float] = None,
    ) -> None:
        """Process one heartbeat receipt for ``row`` at ``at_real``
        (default: the scheduler's *now*).

        Freshness deadlines due at or before the receipt time fire
        first — the canonical deadline-before-delivery rule.
        """
        if row < 0 or row >= self._n or not self._active[row]:
            return
        t = self._scheduler.now() if at_real is None else at_real
        self.advance(t)
        if not self._active[row]:
            return  # a deadline listener removed the row
        self._time = max(self._time, t)
        self._delivered[row] += 1
        kind = self._kind[row]
        if kind == KIND_NFDS:
            self._deliver_nfds(row, seq, t)
        else:
            self._deliver_nfdu(row, seq, t)
        self._request_wakeup()

    def _deliver_nfds(self, row: int, seq: int, t: float) -> None:
        if seq > self._max_seq[row]:
            self._max_seq[row] = seq
        now_local = self._local(row, t)
        i = self._window_index(
            now_local, float(self._eta[row]), float(self._shift[row])
        )
        if self._max_seq[row] >= i and not self._trusted[row]:
            self._trusted[row] = True
            self._emit(row, t, TRUST)

    def _deliver_nfdu(self, row: int, seq: int, t: float) -> None:
        if seq <= self._max_seq[row]:
            return  # old or duplicate message: no effect (Fig. 9)
        self._max_seq[row] = seq
        now_local = self._local(row, t)
        eta = float(self._eta[row])
        if self._kind[row] == KIND_NFDE:
            ea = self._observe_window(row, seq, now_local, eta)
        else:
            ea = self._ea_fns[row](seq + 1)
        tau = ea + float(self._shift[row])
        self._tau_next[row] = tau
        self._gen[row] += 1  # cancels any armed expiry
        if now_local < tau:
            if not self._trusted[row]:
                self._trusted[row] = True
                self._emit(row, t, TRUST)
            real = max(self._real(row, tau), t)
            heapq.heappush(
                self._heap, (real, _ENTRY_ROW, row, -int(self._gen[row]))
            )
        else:
            # m_ℓ already stale on arrival: remain (or become) suspect.
            if self._trusted[row]:
                self._trusted[row] = False
                self._emit(row, t, SUSPECT)

    def _observe_window(
        self, row: int, seq: int, recv_local: float, eta: float
    ) -> float:
        """Feed the row's eq. (6.3) window and return EA_{seq+1}.

        Float-op order matches :class:`ArrivalTimeEstimator` exactly
        (append-then-evict), so estimates are bit-identical.
        """
        slot = self._win_slot[row]
        window = int(self._win_len[slot])
        count = int(self._win_count[slot])
        head = int(self._win_head[slot])
        norm = recv_local - eta * seq
        total = float(self._win_sum[slot]) + norm
        if count == window:
            total -= float(self._win_buf[slot, head])
            self._win_buf[slot, head] = norm
            self._win_head[slot] = (head + 1) % window
        else:
            self._win_buf[slot, (head + count) % window] = norm
            self._win_count[slot] = count + 1
            count += 1
        self._win_sum[slot] = total
        return total / min(count, window) + eta * (seq + 1)

    # ------------------------------------------------------------------ #
    # Batched ingestion
    # ------------------------------------------------------------------ #

    def ingest(
        self,
        times: np.ndarray,
        rows: np.ndarray,
        seqs: np.ndarray,
    ) -> None:
        """Consume a batch of heartbeats sorted by arrival time.

        Between consecutive wheel deadlines, receipts for *trusted*
        perfect-clock NFD-S rows — the steady-state bulk — are applied
        as single vectorized passes; receipts that can transition
        (suspected rows, NFD-U/E rows, skewed clocks) replay through the
        exact scalar path, preserving bit-identical verdict streams.
        """
        times = np.ascontiguousarray(times, dtype=np.float64)
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        seqs = np.ascontiguousarray(seqs, dtype=np.int64)
        n = len(times)
        if len(rows) != n or len(seqs) != n:
            raise InvalidParameterError("times/rows/seqs length mismatch")
        pos = 0
        while pos < n:
            t_dead = self._heap[0][0] if self._heap else math.inf
            hi = (
                int(np.searchsorted(times, t_dead, side="left"))
                if math.isfinite(t_dead)
                else n
            )
            if hi > pos:
                self._ingest_chunk(
                    times[pos:hi], rows[pos:hi], seqs[pos:hi]
                )
                pos = hi
            if pos < n:
                self.advance(times[pos])
        self._request_wakeup()

    def _ingest_chunk(
        self, times: np.ndarray, rows: np.ndarray, seqs: np.ndarray
    ) -> None:
        """Apply a deadline-free span of receipts."""
        act = self._active[rows]
        if not act.all():
            times, rows, seqs = times[act], rows[act], seqs[act]
            if len(rows) == 0:
                return
        np.add.at(self._delivered, rows, 1)
        # Fast lane: trusted, perfect-clock NFD-S rows.  No deadline
        # falls inside the chunk, so a trusted row stays trusted for the
        # whole span and its receipts reduce to a running max.
        fast = (
            (self._kind[rows] == KIND_NFDS)
            & self._trusted[rows]
            & np.fromiter(
                (self._clocks[r] is None for r in rows),
                dtype=bool,
                count=len(rows),
            )
        )
        if fast.any():
            np.maximum.at(self._max_seq, rows[fast], seqs[fast])
        slow = ~fast
        if slow.any():
            for t, row, seq in zip(times[slow], rows[slow], seqs[slow]):
                row = int(row)
                t = float(t)
                self._time = max(self._time, t)
                kind = self._kind[row]
                if kind == KIND_NFDS:
                    self._deliver_nfds(row, int(seq), t)
                else:
                    self._deliver_nfdu(row, int(seq), t)
        if len(times):
            self._time = max(self._time, float(times[-1]))


# ---------------------------------------------------------------------- #
# Simulator-service host adapter
# ---------------------------------------------------------------------- #


class _RowDetectorView:
    """Read-only detector facade over one engine row.

    Presents the surface of a live :class:`HeartbeatFailureDetector`
    (``output``, ``suspects``, parameters, ``describe``) while the real
    state lives in the engine's tables; parameter attributes delegate to
    the original (unbound) spec detector.
    """

    __slots__ = ("_engine", "_row", "_spec")

    def __init__(self, engine: VectorMonitorEngine, row: int, spec) -> None:
        self._engine = engine
        self._row = row
        self._spec = spec

    @property
    def output(self) -> str:
        return self._engine.output_char(self._row)

    @property
    def suspects(self) -> bool:
        return self.output == SUSPECT

    def describe(self) -> str:
        return f"soa:{self._spec.describe()}"

    def __getattr__(self, name):
        return getattr(self._spec, name)


class SoAMonitorHost:
    """Drop-in for :class:`~repro.sim.monitor.DetectorHost` backed by a
    shared :class:`VectorMonitorEngine` row.

    Owns the per-incarnation measurement state (the
    :class:`~repro.metrics.transitions.OutputTrace`) exactly like the
    object host; the detector state and freshness timers live in the
    engine.  ``stop`` retires the row idempotently — a removed sender
    can never fire a final transition.
    """

    def __init__(
        self,
        engine: VectorMonitorEngine,
        detector: HeartbeatFailureDetector,
        clock: Optional[Clock] = None,
        sender_clock: Optional[Clock] = None,
        incarnation: int = 0,
        label: str = "",
    ) -> None:
        from repro.metrics.transitions import OutputTrace

        self._engine = engine
        self._spec = detector
        self._clock = clock if clock is not None else PerfectClock()
        self._stopped = False
        self._started = False
        #: service-installed listener ``(local_time, output)``
        self.listener: Optional[Callable[[float, str], None]] = None
        self._trace = OutputTrace(
            start_time=engine.now, initial_output=detector.output
        )
        self._row = engine.register(
            detector,
            clock=None if isinstance(self._clock, PerfectClock) else self._clock,
            on_transition=self._on_transition,
            incarnation=incarnation,
            label=label,
        )
        self._detector_view = _RowDetectorView(engine, self._row, detector)

    # -- DetectorHost-compatible surface ------------------------------- #

    @property
    def row(self) -> int:
        return self._row

    @property
    def detector(self):
        return self._detector_view

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def delivered_count(self) -> int:
        return self._engine.delivered_count(self._row)

    @property
    def trace_start_time(self) -> float:
        return self._trace.start_time

    @property
    def trace_initial_output(self) -> str:
        return self._trace.initial_output

    @property
    def stopped(self) -> bool:
        return self._stopped

    def local_now(self) -> float:
        return self._clock.local_time(self._engine.now)

    def start(self) -> None:
        if self._started:
            raise SimulationError("host already started")
        self._started = True
        self._engine.start_row(self._row)

    def stop(self) -> None:
        """Retire the row; idempotent (see :meth:`VectorMonitorEngine.remove`)."""
        self._stopped = True
        self._engine.remove(self._row)

    def deliver(self, seq: int, send_local_time: float) -> None:
        if self._stopped:
            return  # late arrival to a removed incarnation
        self._engine.deliver(self._row, seq, send_local_time)

    def _on_transition(self, real: float, local: float, output: str) -> None:
        if self._stopped:
            return
        self._trace.record(real, output)
        if self.listener is not None:
            self.listener(local, output)

    def finish(self):
        """Close and return the output trace at the current time."""
        return self._trace.close(self._engine.now)
