"""Event records emitted by the monitoring service and membership layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

__all__ = ["MonitorEvent", "MembershipEvent"]


@dataclass(frozen=True)
class MonitorEvent:
    """A failure-detector transition for one monitored process.

    Attributes:
        time: real (simulation) time of the transition.
        process: name of the monitored process.
        output: the new output, ``"S"`` or ``"T"``.
        administrative: True for synthetic events published by service
            operations (remove/restart) rather than by the detector —
            consumers must not count these as detector mistakes.
        incarnation: incarnation of the pipeline that produced the
            event.  The service only ever publishes events of the
            *current* incarnation (stale detectors are muted at the
            source), so consumers like the election layer can rely on
            this being monotone per process.
    """

    time: float
    process: str
    output: str
    administrative: bool = False
    incarnation: int = 0

    @property
    def is_suspicion(self) -> bool:
        return self.output == "S"


@dataclass(frozen=True)
class MembershipEvent:
    """A membership view change.

    Attributes:
        time: real time of the change.
        view_id: the new (monotonically increasing) view identifier.
        members: the trusted set after the change.
        joined: processes that entered the view.
        left: processes that left the view (suspected or removed).
    """

    time: float
    view_id: int
    members: FrozenSet[str]
    joined: FrozenSet[str]
    left: FrozenSet[str]
