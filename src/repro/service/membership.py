"""A simple group-membership view driven by the failure detectors.

Group membership is the paper's canonical motivating application (its
introduction cites Isis, Transis, Totem, Horus, Relacs, Ensemble): every
failure-detector mistake costs an expensive view change, which is exactly
why ``E(T_MR)`` (time between mistakes) and ``E(T_M)`` (time to retract
one) are the right accuracy metrics.

:class:`GroupMembership` maintains the *view* — the set of trusted
processes — over a :class:`~repro.service.monitor_service.MonitorService`.
Every transition may produce a new view with an incremented identifier;
listeners receive :class:`~repro.service.events.MembershipEvent`.  The
class also counts *spurious* view changes (those caused by detector
mistakes on live processes), the service-level analogue of the mistake
rate ``λ_M``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List

from repro.service.events import MembershipEvent, MonitorEvent
from repro.service.monitor_service import MonitorService

__all__ = ["MembershipView", "GroupMembership"]


@dataclass(frozen=True)
class MembershipView:
    """An immutable membership view."""

    view_id: int
    members: FrozenSet[str]
    installed_at: float

    def __contains__(self, name: str) -> bool:
        return name in self.members

    def __len__(self) -> int:
        return len(self.members)


class GroupMembership:
    """Tracks the trusted set of a :class:`MonitorService` as views.

    Args:
        service: the monitor service to follow.

    The initial view (id 0) is empty: every process joins when it is
    first trusted, mirroring the paper's detectors which suspect until
    the first fresh heartbeat.
    """

    def __init__(self, service: MonitorService) -> None:
        self._service = service
        self._view = MembershipView(
            view_id=0, members=frozenset(), installed_at=service.sim.now
        )
        self._history: List[MembershipView] = [self._view]
        self._listeners: List[Callable[[MembershipEvent], None]] = []
        self._spurious_changes = 0
        service.subscribe(self._on_transition)

    @property
    def view(self) -> MembershipView:
        """The currently installed view."""
        return self._view

    @property
    def history(self) -> tuple:
        """All installed views, oldest first."""
        return tuple(self._history)

    @property
    def view_change_count(self) -> int:
        """Number of view changes since the initial (empty) view."""
        return len(self._history) - 1

    @property
    def spurious_change_count(self) -> int:
        """View changes that removed a process that had *not* crashed.

        This is the membership-level cost of failure-detector mistakes —
        the quantity that ``T_MR^L`` in a QoS contract is meant to keep
        rare.
        """
        return self._spurious_changes

    def subscribe(self, listener: Callable[[MembershipEvent], None]) -> None:
        self._listeners.append(listener)

    def _on_transition(self, event: MonitorEvent) -> None:
        members = set(self._view.members)
        if event.output == "T":
            if event.process in members:
                return
            members.add(event.process)
            joined = frozenset({event.process})
            left: FrozenSet[str] = frozenset()
        else:
            if event.process not in members:
                return
            members.discard(event.process)
            joined = frozenset()
            left = frozenset({event.process})
            if not event.administrative:
                proc = self._service.process(event.process)
                # Spurious iff the process was still live *when the
                # suspicion fired*: a crash scheduled for the future
                # (crash_time > event.time) does not excuse a mistake
                # made before it takes effect.
                if event.time < proc.crash_time:
                    self._spurious_changes += 1
        self._install(frozenset(members), joined, left, event.time)

    def _install(
        self,
        members: FrozenSet[str],
        joined: FrozenSet[str],
        left: FrozenSet[str],
        time: float,
    ) -> None:
        self._view = MembershipView(
            view_id=self._view.view_id + 1,
            members=members,
            installed_at=time,
        )
        self._history.append(self._view)
        event = MembershipEvent(
            time=time,
            view_id=self._view.view_id,
            members=members,
            joined=joined,
            left=left,
        )
        for listener in self._listeners:
            listener(event)
