"""A shared failure-detection service (the paper's Section 8.1 outlook).

The paper's algorithms monitor a single process; real deployments (the
cluster-management and group-membership applications motivating the
paper, and the failure detection *service* of [15] the authors were
building) monitor many.  This package scales the two-process core up:

* :class:`MonitorService` — one detector instance per monitored process,
  each with its own link characteristics, QoS contract and adaptive
  configuration; a single place to query "whom do I suspect?".
* :class:`GroupMembership` — a simple membership view on top: the set of
  trusted processes, with a monotonically increasing view identifier and
  change notifications (crash-recovery under a new identity, per the
  paper's footnote 2, is modelled by re-adding a process under a fresh
  incarnation).
"""

from repro.service.contracts import (
    ConfiguredDetector,
    detector_for_contract,
    detector_for_contract_unsync,
)
from repro.service.events import MembershipEvent, MonitorEvent
from repro.service.membership import GroupMembership, MembershipView
from repro.service.monitor_service import MonitoredProcess, MonitorService
from repro.service.soa import (
    ManualScheduler,
    SimWheelScheduler,
    SoAMonitorHost,
    VectorMonitorEngine,
)

__all__ = [
    "MonitorService",
    "MonitoredProcess",
    "VectorMonitorEngine",
    "SoAMonitorHost",
    "SimWheelScheduler",
    "ManualScheduler",
    "GroupMembership",
    "MembershipView",
    "MonitorEvent",
    "MembershipEvent",
    "ConfiguredDetector",
    "detector_for_contract",
    "detector_for_contract_unsync",
]
