"""Contract-driven process registration.

The paper's architecture sketch (Section 8.1: "This service is intended
to be shared among many different concurrent applications, each with a
different set of QoS requirements") implies the service — not the
caller — should translate a QoS contract into detector parameters.
This module provides that translation for both clock regimes:

* :func:`detector_for_contract` — known network behaviour, synchronized
  clocks: the Section 4 procedure → an NFD-S instance;
* :func:`detector_for_contract_unsync` — unknown behaviour and/or
  unsynchronized clocks: the Section 6 procedure → an NFD-E instance.

Both return the detector *and* the η the sender must use — the two are
inseparable: a detector configured for η is wrong at any other rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.configurator import configure_nfds
from repro.analysis.configurator_nfdu import configure_nfdu
from repro.core.nfd_e import NFDE
from repro.core.nfd_s import NFDS
from repro.metrics.qos import QoSRequirements
from repro.net.delays import DelayDistribution

__all__ = [
    "ConfiguredDetector",
    "detector_for_contract",
    "detector_for_contract_unsync",
]


@dataclass(frozen=True)
class ConfiguredDetector:
    """A detector plus the heartbeat rate it was configured for."""

    detector: object
    eta: float
    description: str


def detector_for_contract(
    contract: QoSRequirements,
    loss_probability: float,
    delay: DelayDistribution,
) -> ConfiguredDetector:
    """NFD-S configured for ``contract`` on a *known* network.

    Raises:
        QoSUnachievableError: when no failure detector at all can meet
            the contract in this system (Theorem 7 case 2).
    """
    cfg = configure_nfds(contract, loss_probability, delay)
    return ConfiguredDetector(
        detector=NFDS(eta=cfg.eta, delta=cfg.delta),
        eta=cfg.eta,
        description=(
            f"NFD-S(eta={cfg.eta:.4g}, delta={cfg.delta:.4g}) for "
            f"T_D<={contract.detection_time_upper:g}, "
            f"T_MR>={contract.mistake_recurrence_lower:g}, "
            f"T_M<={contract.mistake_duration_upper:g}"
        ),
    )


def detector_for_contract_unsync(
    relative_detection_bound: float,
    mistake_recurrence_lower: float,
    mistake_duration_upper: float,
    loss_probability: float,
    var_delay: float,
    window: int = 32,
) -> ConfiguredDetector:
    """NFD-E configured for a *relative* contract (Section 6 regime).

    The detection guarantee is ``T_D ≤ relative_detection_bound + E(D)``
    — the strongest form achievable with one-way messages and
    unsynchronized clocks (paper, eq. 6.1).
    """
    cfg = configure_nfdu(
        relative_detection_bound=relative_detection_bound,
        mistake_recurrence_lower=mistake_recurrence_lower,
        mistake_duration_upper=mistake_duration_upper,
        loss_probability=loss_probability,
        var_delay=var_delay,
    )
    return ConfiguredDetector(
        detector=NFDE(eta=cfg.eta, alpha=cfg.alpha, window=window),
        eta=cfg.eta,
        description=(
            f"NFD-E(eta={cfg.eta:.4g}, alpha={cfg.alpha:.4g}, "
            f"window={window}) for T_D<={relative_detection_bound:g}+E(D)"
        ),
    )
