"""Adaptive failure detection (Section 8.1 of the paper).

The paper's recipe for networks whose behaviour changes gradually (e.g.
peak vs. off-peak hours): *periodically re-execute the configuration
pipeline* of Fig. 11 — estimate the current ``p_L`` and ``V(D)`` from the
``n`` most recent heartbeats, feed them to the Section 6 configurator,
and apply the resulting ``(η, α)``.

Two pieces implement this:

* :class:`AdaptiveController` — the pure decision logic: consumes
  :class:`~repro.estimation.observer.NetworkEstimate` snapshots, re-runs
  :func:`~repro.analysis.configurator_nfdu.configure_nfdu`, and reports a
  new configuration when it differs from the current one by more than a
  hysteresis threshold (avoiding reconfiguration churn on estimation
  noise).
* :class:`AdaptiveNFDE` — an NFD-E whose slack ``α`` tracks the
  controller's output *live*.  The heartbeat *rate* ``η`` is owned by the
  sender, so η changes cannot be applied unilaterally by the monitor; the
  controller's recommended η is surfaced through ``on_reconfigure`` /
  :attr:`AdaptiveNFDE.recommended_eta` for the deployment (or the
  experiment driver) to apply at an epoch boundary.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.configurator_nfdu import NFDUConfig, configure_nfdu
from repro.core.base import Heartbeat
from repro.core.nfd_e import NFDE
from repro.errors import InvalidParameterError, QoSUnachievableError
from repro.estimation.observer import HeartbeatObserver, NetworkEstimate

__all__ = ["AdaptiveController", "AdaptiveNFDE"]


class AdaptiveController:
    """Re-runs the Section 6 configurator on fresh network estimates.

    Args:
        relative_detection_bound: ``T_D^u`` of the QoS contract.
        mistake_recurrence_lower: ``T_MR^L``.
        mistake_duration_upper: ``T_M^U``.
        hysteresis: minimum relative change in η or α that justifies a
            reconfiguration (default 5%).
    """

    def __init__(
        self,
        relative_detection_bound: float,
        mistake_recurrence_lower: float,
        mistake_duration_upper: float,
        hysteresis: float = 0.05,
    ) -> None:
        if hysteresis < 0:
            raise InvalidParameterError(
                f"hysteresis must be >= 0, got {hysteresis}"
            )
        self._t_d_u = float(relative_detection_bound)
        self._t_mr_l = float(mistake_recurrence_lower)
        self._t_m_u = float(mistake_duration_upper)
        self._hysteresis = float(hysteresis)
        self._current: Optional[NFDUConfig] = None
        self._reconfig_count = 0

    @property
    def current(self) -> Optional[NFDUConfig]:
        return self._current

    @property
    def reconfiguration_count(self) -> int:
        return self._reconfig_count

    def update(self, estimate: NetworkEstimate) -> Optional[NFDUConfig]:
        """Recompute the configuration; return it if it changed enough.

        Raises:
            QoSUnachievableError: when the *current* network conditions
                make the contract unachievable by any detector — callers
                should surface this to the application rather than
                silently keep a stale configuration.
        """
        candidate = configure_nfdu(
            relative_detection_bound=self._t_d_u,
            mistake_recurrence_lower=self._t_mr_l,
            mistake_duration_upper=self._t_m_u,
            loss_probability=min(estimate.loss_probability, 0.999),
            var_delay=estimate.var_delay,
        )
        if self._current is not None and not self._changed(candidate):
            return None
        self._current = candidate
        self._reconfig_count += 1
        return candidate

    def _changed(self, candidate: NFDUConfig) -> bool:
        assert self._current is not None
        cur = self._current

        def rel(a: float, b: float) -> float:
            scale = max(abs(a), abs(b), 1e-12)
            return abs(a - b) / scale

        return (
            rel(candidate.eta, cur.eta) > self._hysteresis
            or rel(candidate.alpha, cur.alpha) > self._hysteresis
        )


class AdaptiveNFDE(NFDE):
    """NFD-E that periodically re-estimates and re-configures itself.

    Every ``reconfig_every`` received heartbeats the embedded
    :class:`HeartbeatObserver` is snapshotted and handed to the
    :class:`AdaptiveController`; if a new configuration results, the
    slack ``α`` is applied immediately and ``on_reconfigure`` is invoked
    with the full :class:`NFDUConfig` (including the recommended η).

    Args:
        eta: the sender's (current) inter-sending time.
        initial_alpha: slack until the first reconfiguration.
        controller: the adaptation policy.
        reconfig_every: reconfiguration period, in received heartbeats.
        window: EA-estimation window (n of eq. 6.3).
        stats_window: delay-statistics window for p_L / V(D).
        on_reconfigure: callback invoked with each adopted NFDUConfig.
    """

    name = "adaptive-nfd-e"

    def __init__(
        self,
        eta: float,
        initial_alpha: float,
        controller: AdaptiveController,
        reconfig_every: int = 100,
        window: int = 32,
        stats_window: int = 1000,
        on_reconfigure: Optional[Callable[[NFDUConfig], None]] = None,
    ) -> None:
        if reconfig_every < 1:
            raise InvalidParameterError(
                f"reconfig_every must be >= 1, got {reconfig_every}"
            )
        super().__init__(eta=eta, alpha=initial_alpha, window=window)
        self._controller = controller
        self._observer = HeartbeatObserver(
            eta=eta, stats_window=stats_window, arrival_window=window
        )
        self._reconfig_every = int(reconfig_every)
        self._since_reconfig = 0
        self._on_reconfigure = on_reconfigure
        self._recommended_eta = eta
        self._qos_alerts = 0

    @property
    def observer(self) -> HeartbeatObserver:
        return self._observer

    @property
    def controller(self) -> AdaptiveController:
        return self._controller

    @property
    def recommended_eta(self) -> float:
        """The η the controller would use, for the sender to adopt."""
        return self._recommended_eta

    @property
    def qos_alert_count(self) -> int:
        """Times the contract became unachievable under current estimates."""
        return self._qos_alerts

    def _note_arrival(self, heartbeat: Heartbeat) -> None:
        super()._note_arrival(heartbeat)
        self._observer.loss.observe(heartbeat.seq)
        self._observer.delay_stats.observe(
            heartbeat.receive_local_time - heartbeat.send_local_time
        )
        self._since_reconfig += 1
        if self._since_reconfig >= self._reconfig_every and self._observer.ready:
            self._since_reconfig = 0
            self._reconfigure()

    def _reconfigure(self) -> None:
        try:
            config = self._controller.update(self._observer.snapshot())
        except QoSUnachievableError:
            self._qos_alerts += 1
            return
        if config is None:
            return
        # α applies immediately; the very next freshness point computed on
        # a heartbeat receipt uses it.
        self._alpha = config.alpha
        self._recommended_eta = config.eta
        if self._on_reconfigure is not None:
            self._on_reconfigure(config)

    def describe(self) -> str:
        return (
            f"AdaptiveNFD-E(eta={self.eta:g}, alpha={self.alpha:g}, "
            f"reconfig_every={self._reconfig_every})"
        )
