"""Detector registry: build detectors by name from keyword parameters.

Used by the experiment CLI and the service layer so that configuration
files / command lines can say ``nfd-s`` instead of importing classes.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.base import HeartbeatFailureDetector
from repro.core.jacobson import JacobsonFD
from repro.core.nfd_e import NFDE
from repro.core.nfd_s import NFDS
from repro.core.nfd_u import NFDU
from repro.core.phi_accrual import PhiAccrualFD
from repro.core.simple import SimpleFD
from repro.errors import InvalidParameterError

__all__ = ["available_detectors", "create_detector", "register_detector"]

_FACTORIES: Dict[str, Callable[..., HeartbeatFailureDetector]] = {
    NFDS.name: NFDS,
    NFDU.name: NFDU,
    NFDE.name: NFDE,
    SimpleFD.name: SimpleFD,
    PhiAccrualFD.name: PhiAccrualFD,
    JacobsonFD.name: JacobsonFD,
}


def available_detectors() -> tuple:
    """Names of all registered detector types."""
    return tuple(sorted(_FACTORIES))


def register_detector(
    name: str, factory: Callable[..., HeartbeatFailureDetector]
) -> None:
    """Register a custom detector type under ``name``.

    Raises:
        InvalidParameterError: if the name is already taken.
    """
    if name in _FACTORIES:
        raise InvalidParameterError(f"detector name {name!r} already registered")
    _FACTORIES[name] = factory


def create_detector(name: str, **params) -> HeartbeatFailureDetector:
    """Instantiate a registered detector type with the given parameters."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown detector {name!r}; available: {available_detectors()}"
        ) from None
    return factory(**params)
