"""NFD-S — the paper's new failure detector for synchronized clocks (Fig. 6).

The monitored process p sends heartbeat ``m_i`` at time ``σ_i = i·η``.
The monitoring process q derives *freshness points* ``τ_i = σ_i + δ`` and
applies the freshness rule (Lemma 2):

    q trusts p at time ``t ∈ [τ_i, τ_{i+1})`` **iff** q has received some
    message ``m_j`` with ``j ≥ i`` by time ``t``.

Consequences proved in the paper and relied on here:

* the probability of a premature timeout on ``m_i`` does not depend on the
  heartbeats preceding ``m_i`` (unlike the common algorithm);
* ``T_D ≤ δ + η`` deterministically (Theorem 5.1), independent of the
  maximum message delay;
* steady state is reached at ``τ_1`` already.

Synchronized clocks are required because q computes ``τ_i`` from p's
*sending* times: both processes must agree what "time ``i·η``" means.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.base import Heartbeat, HeartbeatFailureDetector, TimerHandle
from repro.errors import InvalidParameterError
from repro.metrics.transitions import SUSPECT, TRUST

__all__ = ["NFDS"]


class NFDS(HeartbeatFailureDetector):
    """The NFD-S algorithm with parameters ``eta`` (η) and ``delta`` (δ).

    Args:
        eta: heartbeat inter-sending time η (> 0).
        delta: freshness-point shift δ (≥ 0); ``τ_i = i·η + δ``.
        first_seq: sequence number of the first heartbeat (1 in the paper).

    The detection time of this instance is at most ``delta + eta``
    (Theorem 5.1), and among all detectors with the same heartbeat rate and
    the same detection bound it maximizes the query accuracy probability
    (Theorem 6).
    """

    name = "nfd-s"

    def __init__(self, eta: float, delta: float, first_seq: int = 1) -> None:
        super().__init__()
        if eta <= 0:
            raise InvalidParameterError(f"eta must be positive, got {eta}")
        if delta < 0:
            raise InvalidParameterError(f"delta must be >= 0, got {delta}")
        if first_seq < 1:
            raise InvalidParameterError(f"first_seq must be >= 1, got {first_seq}")
        self._eta = float(eta)
        self._delta = float(delta)
        self._first_seq = int(first_seq)
        self._max_seq = first_seq - 1  # highest sequence number received
        self._next_check = first_seq  # index i of the next freshness point τ_i
        self._timer: Optional[TimerHandle] = None

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #

    @property
    def eta(self) -> float:
        return self._eta

    @property
    def delta(self) -> float:
        return self._delta

    @property
    def detection_time_bound(self) -> float:
        """``T_D ≤ δ + η`` — tight (Theorem 5.1)."""
        return self._delta + self._eta

    def freshness_point(self, i: int) -> float:
        """``τ_i = σ_i + δ = i·η + δ`` (local == real under sync clocks)."""
        return i * self._eta + self._delta

    # ------------------------------------------------------------------ #
    # Algorithm (Fig. 6)
    # ------------------------------------------------------------------ #

    def _on_start(self) -> None:
        # Line 2: output = S initially.  Arm the first freshness point.
        self._set_output(SUSPECT)
        self._arm(self._next_check)

    def _arm(self, i: int) -> None:
        self._timer = self.runtime.call_at(
            self.freshness_point(i), lambda: self._at_freshness_point(i)
        )

    def _at_freshness_point(self, i: int) -> None:
        # Lines 3-4: at τ_i, suspect unless some m_j with j ≥ i arrived.
        if self._max_seq < i:
            self._set_output(SUSPECT)
        self._next_check = i + 1
        self._arm(self._next_check)

    def on_heartbeat(self, heartbeat: Heartbeat) -> None:
        # Lines 5-6: on receiving m_j at t ∈ [τ_i, τ_{i+1}), trust if j ≥ i.
        if heartbeat.seq > self._max_seq:
            self._max_seq = heartbeat.seq
        if self._max_seq >= self._current_window_index():
            self._set_output(TRUST)

    def _current_window_index(self) -> int:
        """Index i such that local now ∈ [τ_i, τ_{i+1}); 0 before τ_1.

        By Lemma 2 with ``i = 0``, *any* received message makes q trust p
        before the first freshness point (and the initial output is S only
        until then).
        """
        now = self.runtime.local_now()
        i = math.floor((now - self._delta) / self._eta)
        # Guard against float error at the boundary: τ_i must be <= now.
        while i * self._eta + self._delta > now:
            i -= 1
        while (i + 1) * self._eta + self._delta <= now:
            i += 1
        return max(i, 0)

    def describe(self) -> str:
        return f"NFD-S(eta={self._eta:g}, delta={self._delta:g})"
