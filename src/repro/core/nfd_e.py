"""NFD-E — NFD-U with *estimated* expected arrival times (Section 6.3).

In practice q does not know ``EA_i``.  NFD-E estimates it from the ``n``
most recent heartbeats using eq. (6.3):

    ``EA_{ℓ+1} ≈ (1/n) · Σ (A'_i − η·s_i)  +  (ℓ+1)·η``

where ``A'_i`` are receipt times (q's clock) and ``s_i`` the sequence
numbers of the last ``n`` received messages.  Each receipt is "normalized"
back by ``η·s_i``, the normalized receipt times are averaged — an estimate
of ``(send-time origin) + E(D)`` in q's clock — and shifted forward to the
next expected heartbeat.

The paper reports (Section 6.3, validated by benchmark E5) that NFD-E is
practically indistinguishable from NFD-U for windows as small as n = 30;
the Section 7 simulations use n = 32.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.core.base import Heartbeat
from repro.core.nfd_u import NFDU
from repro.errors import InvalidParameterError

__all__ = ["ArrivalTimeEstimator", "NFDE"]


class ArrivalTimeEstimator:
    """Sliding-window estimator of expected arrival times (eq. 6.3).

    Maintains the last ``window`` received heartbeats as
    ``(seq, receive_local_time)`` pairs and a running sum of their
    normalized receipt times, so both update and query are O(1).
    """

    def __init__(self, eta: float, window: int) -> None:
        if eta <= 0:
            raise InvalidParameterError(f"eta must be positive, got {eta}")
        if window < 1:
            raise InvalidParameterError(f"window must be >= 1, got {window}")
        self._eta = float(eta)
        self._window = int(window)
        self._entries: Deque[Tuple[int, float]] = deque()
        self._normalized_sum = 0.0

    @property
    def window(self) -> int:
        return self._window

    @property
    def n_samples(self) -> int:
        return len(self._entries)

    @property
    def ready(self) -> bool:
        """Whether at least one sample has been observed."""
        return bool(self._entries)

    def observe(self, seq: int, receive_local_time: float) -> None:
        """Record the receipt of heartbeat ``seq`` at the given local time."""
        normalized = receive_local_time - self._eta * seq
        self._entries.append((seq, receive_local_time))
        self._normalized_sum += normalized
        if len(self._entries) > self._window:
            old_seq, old_time = self._entries.popleft()
            self._normalized_sum -= old_time - self._eta * old_seq

    def expected_arrival(self, seq: int) -> float:
        """Estimated ``EA_seq`` in q's local clock (eq. 6.3)."""
        if not self._entries:
            raise InvalidParameterError(
                "no heartbeats observed yet; cannot estimate EA"
            )
        return self._normalized_sum / len(self._entries) + self._eta * seq


class NFDE(NFDU):
    """The NFD-E algorithm: NFD-U driven by :class:`ArrivalTimeEstimator`.

    Args:
        eta: heartbeat inter-sending time η.
        alpha: freshness slack α.
        window: number of recent heartbeats used for the EA estimate
            (n in the paper; 32 in its simulations).
        first_seq: sequence number of the first heartbeat.
    """

    name = "nfd-e"

    def __init__(
        self,
        eta: float,
        alpha: float,
        window: int = 32,
        first_seq: int = 1,
    ) -> None:
        self._estimator = ArrivalTimeEstimator(eta=eta, window=window)
        super().__init__(
            eta=eta,
            alpha=alpha,
            expected_arrival=self._estimator.expected_arrival,
            first_seq=first_seq,
        )

    @property
    def estimator(self) -> ArrivalTimeEstimator:
        return self._estimator

    def _note_arrival(self, heartbeat: Heartbeat) -> None:
        # Feed the estimator *before* NFDU computes τ_{ℓ+1}; NFDU calls
        # this hook ahead of evaluating expected_arrival(ℓ+1), so the
        # estimate always includes the message that just arrived, exactly
        # as in Fig. 9 line 10 ("every time q executes line 10, q considers
        # the n most recent heartbeat messages").
        self._estimator.observe(heartbeat.seq, heartbeat.receive_local_time)

    def describe(self) -> str:
        return (
            f"NFD-E(eta={self.eta:g}, alpha={self.alpha:g}, "
            f"window={self._estimator.window})"
        )
