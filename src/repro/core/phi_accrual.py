"""The φ-accrual failure detector (Hayashibara et al., SRDS 2004).

This is the best-known descendant of the paper under reproduction: Akka's
and Cassandra's failure detectors are φ-accrual detectors.  It is included
as a documented *extension* so the E11 benchmark can compare the paper's
NFD family against its practical successor on the same workloads.

Idea: instead of a binary suspect/trust output, compute a continuous
*suspicion level*

    ``φ(t) = -log₁₀ P(no heartbeat gap this long | history)``

from the empirical distribution of inter-arrival times, and threshold it.
Following Hayashibara, inter-arrival times are modeled as normal with the
windowed sample mean and standard deviation.

To expose the standard binary interface, this implementation computes — at
each heartbeat arrival — the *future* local time at which φ would cross
the threshold if no further heartbeat arrived, and arms a timer for that
instant.  This yields exact transition times without polling.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

from scipy.special import ndtri

from repro.core.base import Heartbeat, HeartbeatFailureDetector, TimerHandle
from repro.errors import InvalidParameterError
from repro.metrics.transitions import SUSPECT, TRUST

__all__ = ["PhiAccrualFD"]


class PhiAccrualFD(HeartbeatFailureDetector):
    """φ-accrual detector with a normal inter-arrival model.

    Args:
        threshold: suspicion threshold Φ; q suspects p whenever
            ``φ(now) > threshold``.  Typical production values are 8-12
            (Akka defaults to 8; Cassandra's is also 8 by default).
        window: number of recent inter-arrival samples kept.
        min_std: lower bound on the inter-arrival standard deviation, to
            avoid a degenerate model when the network is very regular.
        bootstrap_interval: assumed inter-arrival mean before the first
            two heartbeats (e.g. the nominal η).
    """

    name = "phi-accrual"

    def __init__(
        self,
        threshold: float = 8.0,
        window: int = 200,
        min_std: float = 1e-4,
        bootstrap_interval: Optional[float] = None,
    ) -> None:
        super().__init__()
        if threshold <= 0:
            raise InvalidParameterError(
                f"threshold must be positive, got {threshold}"
            )
        if window < 2:
            raise InvalidParameterError(f"window must be >= 2, got {window}")
        if min_std <= 0:
            raise InvalidParameterError(f"min_std must be positive, got {min_std}")
        self._threshold = float(threshold)
        self._window = int(window)
        self._min_std = float(min_std)
        self._bootstrap = bootstrap_interval
        self._intervals: Deque[float] = deque()
        self._sum = 0.0
        self._sum_sq = 0.0
        self._last_arrival: Optional[float] = None
        self._last_seq = 0
        self._timer: Optional[TimerHandle] = None

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def n_samples(self) -> int:
        return len(self._intervals)

    # ------------------------------------------------------------------ #
    # Inter-arrival statistics
    # ------------------------------------------------------------------ #

    def _observe_interval(self, value: float) -> None:
        self._intervals.append(value)
        self._sum += value
        self._sum_sq += value * value
        if len(self._intervals) > self._window:
            old = self._intervals.popleft()
            self._sum -= old
            self._sum_sq -= old * old

    def _interval_stats(self) -> Optional[tuple]:
        """(mean, std) of the inter-arrival model, or None if no data."""
        n = len(self._intervals)
        if n == 0:
            if self._bootstrap is None:
                return None
            return self._bootstrap, max(self._min_std, self._bootstrap / 4.0)
        mean = self._sum / n
        if n == 1:
            std = max(self._min_std, mean / 4.0)
        else:
            var = max(self._sum_sq / n - mean * mean, 0.0)
            std = max(math.sqrt(var), self._min_std)
        return mean, std

    # ------------------------------------------------------------------ #
    # φ computation
    # ------------------------------------------------------------------ #

    def phi(self, local_time: Optional[float] = None) -> float:
        """Current suspicion level φ at ``local_time`` (default: now)."""
        if self._last_arrival is None:
            return math.inf
        stats = self._interval_stats()
        if stats is None:
            return math.inf
        mean, std = stats
        t = self.runtime.local_now() if local_time is None else local_time
        elapsed = t - self._last_arrival
        z = (elapsed - mean) / std
        # P(interval > elapsed) under the normal model; use the
        # complementary error function for numerical range.
        p_later = 0.5 * math.erfc(z / math.sqrt(2.0))
        if p_later <= 0.0:
            return math.inf
        return -math.log10(p_later)

    def _crossing_delay(self) -> float:
        """Time after the last arrival at which φ crosses the threshold.

        Solve ``-log10 P(interval > Δ) = Φ`` for Δ under the normal model:
        ``Δ* = mean + std · z`` with ``z = Φ⁻¹(1 − 10^(−Φ))``.

        Returns ``inf`` when no model is available yet (first heartbeat,
        no bootstrap): φ stays at 0 until an interval is observed.
        """
        stats = self._interval_stats()
        if stats is None:
            return math.inf
        mean, std = stats
        tail = 10.0 ** (-self._threshold)
        z = float(ndtri(1.0 - tail))
        return mean + std * z

    # ------------------------------------------------------------------ #
    # Detector interface
    # ------------------------------------------------------------------ #

    def _on_start(self) -> None:
        self._set_output(SUSPECT)

    def on_heartbeat(self, heartbeat: Heartbeat) -> None:
        if heartbeat.seq <= self._last_seq:
            return  # stale duplicate / reordered old heartbeat
        now = heartbeat.receive_local_time
        if self._last_arrival is not None:
            self._observe_interval(now - self._last_arrival)
        self._last_arrival = now
        self._last_seq = heartbeat.seq
        self._set_output(TRUST)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        delay = self._crossing_delay()
        if math.isfinite(delay):
            self._timer = self.runtime.call_at(now + delay, self._suspect_now)

    def _suspect_now(self) -> None:
        self._set_output(SUSPECT)

    def describe(self) -> str:
        return (
            f"PhiAccrual(threshold={self._threshold:g}, "
            f"window={self._window})"
        )
