"""The "common" failure detection algorithm (Section 1.2.1) and its
cutoff-bounded variant (Section 7.2).

**SFD** (simple failure detector): p sends heartbeats every η; whenever q
receives a heartbeat it trusts p and (re)starts a timer with a fixed
timeout ``TO``; if the timer expires before a newer heartbeat arrives, q
suspects p.

The paper identifies two structural drawbacks, both reproduced faithfully
by this implementation (and demonstrated in the E1/E7 benchmarks):

1. the probability of a premature timeout on heartbeat ``m_i`` depends on
   the *previous* heartbeat ``m_{i-1}`` (a fast ``m_{i-1}`` starts the
   timer early);
2. the worst-case detection time is ``max-message-delay + TO`` — unbounded
   unless slow heartbeats are discarded.

**Cutoff variant**: heartbeats delayed by more than ``c`` are discarded,
which bounds the detection time by ``c + TO`` but effectively raises the
message loss probability — the trade-off explored by SFD-L (c = 8·E(D))
and SFD-S (c = 4·E(D)) in the paper's Fig. 12.  Detecting that a heartbeat
is "slow" requires comparing the sender timestamp with the local receive
time, i.e. synchronized clocks (or a fail-aware datagram service, see the
paper's footnote 13).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.base import Heartbeat, HeartbeatFailureDetector, TimerHandle
from repro.errors import InvalidParameterError
from repro.metrics.transitions import SUSPECT, TRUST

__all__ = ["SimpleFD"]


class SimpleFD(HeartbeatFailureDetector):
    """The common timeout-based detector, with an optional cutoff.

    Args:
        timeout: the fixed timeout ``TO`` (re)started on every accepted
            heartbeat receipt.
        cutoff: optional cutoff time ``c``; heartbeats whose measured
            one-way delay exceeds ``c`` are discarded.  ``None`` disables
            the cutoff (the plain common algorithm, with *unbounded*
            worst-case detection time).

    With a cutoff, ``T_D ≤ c + TO`` (Section 7.2).
    """

    name = "sfd"

    def __init__(self, timeout: float, cutoff: Optional[float] = None) -> None:
        super().__init__()
        if timeout <= 0:
            raise InvalidParameterError(f"timeout must be positive, got {timeout}")
        if cutoff is not None and cutoff <= 0:
            raise InvalidParameterError(
                f"cutoff must be positive or None, got {cutoff}"
            )
        self._timeout = float(timeout)
        self._cutoff = None if cutoff is None else float(cutoff)
        self._timer: Optional[TimerHandle] = None
        self._accepted = 0
        self._discarded = 0

    @property
    def timeout(self) -> float:
        return self._timeout

    @property
    def cutoff(self) -> Optional[float]:
        return self._cutoff

    @property
    def detection_time_bound(self) -> float:
        """``c + TO`` with a cutoff; unbounded (inf) without."""
        if self._cutoff is None:
            return math.inf
        return self._cutoff + self._timeout

    @property
    def accepted_count(self) -> int:
        """Heartbeats accepted (passed the cutoff filter)."""
        return self._accepted

    @property
    def discarded_count(self) -> int:
        """Heartbeats discarded as slow by the cutoff rule."""
        return self._discarded

    # ------------------------------------------------------------------ #
    # Algorithm
    # ------------------------------------------------------------------ #

    def _on_start(self) -> None:
        # Until the first heartbeat arrives there is nothing to trust.
        self._set_output(SUSPECT)

    def on_heartbeat(self, heartbeat: Heartbeat) -> None:
        if self._cutoff is not None:
            # Measured one-way delay; meaningful under synchronized clocks
            # (the regime in which the paper evaluates this variant).
            delay = heartbeat.receive_local_time - heartbeat.send_local_time
            if delay > self._cutoff:
                self._discarded += 1
                return
        self._accepted += 1
        self._set_output(TRUST)
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.runtime.call_at(
            self.runtime.local_now() + self._timeout, self._expired
        )

    def _expired(self) -> None:
        self._set_output(SUSPECT)

    def describe(self) -> str:
        if self._cutoff is None:
            return f"SFD(TO={self._timeout:g})"
        return f"SFD(TO={self._timeout:g}, cutoff={self._cutoff:g})"


def sfd_for_detection_bound(
    detection_time_upper: float, cutoff: float
) -> SimpleFD:
    """Build the cutoff SFD meeting ``T_D ≤ detection_time_upper``.

    The paper's Section 7.2 recipe: choose ``c``, then ``TO = T_D^U − c``.
    """
    if cutoff >= detection_time_upper:
        raise InvalidParameterError(
            f"cutoff {cutoff} must be smaller than the detection bound "
            f"{detection_time_upper}"
        )
    return SimpleFD(timeout=detection_time_upper - cutoff, cutoff=cutoff)
