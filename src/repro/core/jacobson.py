"""A Jacobson/TCP-RTO-style adaptive-timeout detector — extension.

Before φ-accrual, the folk answer to "how long should the heartbeat
timeout be?" was TCP's retransmission-timeout estimator (Jacobson 1988):
track a smoothed estimate of the inter-arrival time and its mean
deviation, and time out at

    ``deadline = last_arrival + srtt + k·rttvar``    (k = 4 in TCP).

This detector adapts the common algorithm the same way, giving the E11
comparison a second practical baseline between the fixed-timeout SFD
and φ-accrual.  Like φ-accrual — and unlike the paper's configured
NFD — it offers *no hard detection bound* and no way to target a QoS
contract; those are exactly the gaps the paper's approach fills.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import Heartbeat, HeartbeatFailureDetector, TimerHandle
from repro.errors import InvalidParameterError
from repro.metrics.transitions import SUSPECT, TRUST

__all__ = ["JacobsonFD"]


class JacobsonFD(HeartbeatFailureDetector):
    """Adaptive timeout via EWMA inter-arrival mean + deviation.

    Args:
        k: deviation multiplier (TCP uses 4).
        alpha: EWMA gain for the smoothed inter-arrival (TCP: 1/8).
        beta: EWMA gain for the mean deviation (TCP: 1/4).
        bootstrap_interval: assumed inter-arrival before two heartbeats
            have been seen (e.g. the nominal η).
        min_margin: floor on the deviation term, so a perfectly regular
            stream does not collapse the timeout onto the next expected
            arrival.
    """

    name = "jacobson"

    def __init__(
        self,
        k: float = 4.0,
        alpha: float = 0.125,
        beta: float = 0.25,
        bootstrap_interval: Optional[float] = None,
        min_margin: float = 1e-4,
    ) -> None:
        super().__init__()
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        if not 0 < alpha <= 1 or not 0 < beta <= 1:
            raise InvalidParameterError("alpha and beta must be in (0, 1]")
        if min_margin <= 0:
            raise InvalidParameterError(
                f"min_margin must be positive, got {min_margin}"
            )
        self._k = float(k)
        self._alpha = float(alpha)
        self._beta = float(beta)
        self._bootstrap = bootstrap_interval
        self._min_margin = float(min_margin)
        self._srtt: Optional[float] = None  # smoothed inter-arrival
        self._rttvar = 0.0  # smoothed mean deviation
        self._last_arrival: Optional[float] = None
        self._last_seq = 0
        self._timer: Optional[TimerHandle] = None

    @property
    def smoothed_interval(self) -> Optional[float]:
        return self._srtt

    @property
    def deviation(self) -> float:
        return self._rttvar

    def current_timeout(self) -> Optional[float]:
        """The adaptive timeout ``srtt + k·rttvar`` (None pre-bootstrap)."""
        if self._srtt is None:
            if self._bootstrap is None:
                return None
            return self._bootstrap + self._k * max(
                self._min_margin, self._bootstrap / 2.0
            )
        return self._srtt + self._k * max(self._rttvar, self._min_margin)

    def _on_start(self) -> None:
        self._set_output(SUSPECT)

    def on_heartbeat(self, heartbeat: Heartbeat) -> None:
        if heartbeat.seq <= self._last_seq:
            return  # stale duplicate / reordering: Karn's rule, skip
        now = heartbeat.receive_local_time
        if self._last_arrival is not None:
            sample = now - self._last_arrival
            if self._srtt is None:
                self._srtt = sample
                self._rttvar = sample / 2.0
            else:
                err = sample - self._srtt
                self._rttvar = (1 - self._beta) * self._rttvar + (
                    self._beta * abs(err)
                )
                self._srtt = self._srtt + self._alpha * err
        self._last_arrival = now
        self._last_seq = heartbeat.seq
        self._set_output(TRUST)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        timeout = self.current_timeout()
        if timeout is not None:
            self._timer = self.runtime.call_at(now + timeout, self._expired)

    def _expired(self) -> None:
        self._set_output(SUSPECT)

    def describe(self) -> str:
        return (
            f"Jacobson(k={self._k:g}, alpha={self._alpha:g}, "
            f"beta={self._beta:g})"
        )
