"""Event-driven failure-detector interface.

All detectors in this library are *heartbeat* detectors at the monitoring
process *q*: they consume heartbeat receipts and timer expirations, and
maintain a binary output — ``T`` ("trust p") or ``S`` ("suspect p").

Detectors are written against two small abstractions so the same code runs
under the discrete-event simulator and (in principle) on a real event loop:

* :class:`DetectorRuntime` — q's local clock plus one-shot timers in local
  time;
* :class:`Heartbeat` — a received heartbeat with its sequence number, the
  sender-side timestamp (p's local clock) and the receive time (q's local
  clock).

Detectors never see *real* time: everything is in q's local time, which is
what makes the synchronized/unsynchronized clock distinction of the paper
meaningful in this codebase.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.errors import SimulationError
from repro.metrics.transitions import SUSPECT, TRUST

__all__ = [
    "Heartbeat",
    "DetectorRuntime",
    "TimerHandle",
    "HeartbeatFailureDetector",
]


@dataclass(frozen=True)
class Heartbeat:
    """A heartbeat message as seen by the monitoring process q.

    Attributes:
        seq: the sequence number ``i`` of message ``m_i`` (1-based).
        send_local_time: p's clock reading when the message was sent
            (carried in the message, used by delay estimators and the SFD
            cutoff rule).
        receive_local_time: q's clock reading at receipt.
    """

    seq: int
    send_local_time: float
    receive_local_time: float


class TimerHandle(Protocol):
    """Cancellable handle for a one-shot timer."""

    def cancel(self) -> None: ...


class DetectorRuntime(Protocol):
    """What a detector may ask of its host: local time and timers."""

    def local_now(self) -> float:
        """q's local clock reading."""
        ...

    def call_at(
        self, local_time: float, callback: Callable[[], None]
    ) -> TimerHandle:
        """Schedule ``callback`` at the given *local* time.

        Scheduling in the past is an error; hosts raise
        :class:`~repro.errors.SimulationError`.
        """
        ...


class HeartbeatFailureDetector(ABC):
    """Base class for event-driven heartbeat failure detectors.

    Lifecycle: construct → :meth:`bind` (host provides runtime and a
    transition listener) → :meth:`start` (detector arms its initial timers)
    → a stream of :meth:`on_heartbeat` calls and internal timer firings.

    Subclasses change the output exclusively through :meth:`_set_output`,
    which notifies the listener only on actual transitions.  All paper
    algorithms initialize to ``S`` (suspect until proven alive).
    """

    #: short machine name, e.g. "nfd-s"; used by the registry and reports
    name: str = "abstract"

    def __init__(self) -> None:
        self._runtime: Optional[DetectorRuntime] = None
        self._listener: Optional[Callable[[float, str], None]] = None
        self._output: str = SUSPECT
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def bind(
        self,
        runtime: DetectorRuntime,
        listener: Optional[Callable[[float, str], None]] = None,
    ) -> None:
        """Attach the detector to a host runtime.

        Args:
            runtime: clock + timer provider.
            listener: called as ``listener(local_time, new_output)`` on
                every output transition.
        """
        if self._runtime is not None:
            raise SimulationError("detector already bound")
        self._runtime = runtime
        self._listener = listener

    def start(self) -> None:
        """Begin operation (arm initial timers).  Requires :meth:`bind`."""
        if self._runtime is None:
            raise SimulationError("bind() must be called before start()")
        if self._started:
            raise SimulationError("detector already started")
        self._started = True
        self._on_start()

    @abstractmethod
    def _on_start(self) -> None:
        """Subclass hook: arm the initial timers."""

    @abstractmethod
    def on_heartbeat(self, heartbeat: Heartbeat) -> None:
        """Process the receipt of a heartbeat message."""

    # ------------------------------------------------------------------ #
    # Output management
    # ------------------------------------------------------------------ #

    @property
    def output(self) -> str:
        """Current output: ``"T"`` (trust) or ``"S"`` (suspect)."""
        return self._output

    @property
    def suspects(self) -> bool:
        return self._output == SUSPECT

    @property
    def runtime(self) -> DetectorRuntime:
        if self._runtime is None:
            raise SimulationError("detector not bound")
        return self._runtime

    def _set_output(self, output: str) -> None:
        """Set the output, notifying the listener on transitions."""
        if output not in (TRUST, SUSPECT):
            raise SimulationError(f"invalid output {output!r}")
        if output == self._output:
            return
        self._output = output
        if self._listener is not None:
            self._listener(self.runtime.local_now(), output)

    # ------------------------------------------------------------------ #
    # Introspection / reporting
    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        """One-line human description (overridden by subclasses)."""
        return type(self).__name__
