"""NFD-U — NFD for unsynchronized, drift-free clocks (Fig. 9).

Without synchronized clocks, q cannot derive freshness points from p's
*sending* times.  Instead, NFD-U shifts the *expected arrival times*
``EA_i = σ_i + E(D)`` (expressed in q's local clock) by a slack ``α``:
``τ_i = EA_i + α``.  Since ``EA`` differs from ``σ`` only by the constant
``E(D)``, the QoS analysis of NFD-S transfers by substituting
``δ = E(D) + α`` (Section 6.2).

This class takes the ``EA_i`` values via a callable so that:

* tests can supply the exact ``EA_i`` (the paper's NFD-U proper);
* :class:`repro.core.nfd_e.NFDE` can plug in the windowed *estimate* of
  eq. (6.3), giving the practical algorithm.

State machine (Fig. 9): ``ℓ`` is the largest sequence number received.
When q's clock reaches ``τ_{ℓ+1}``, no received message is still fresh —
suspect.  On receiving ``m_j`` with ``j > ℓ``: advance ``ℓ``, recompute
``τ_{ℓ+1} = EA_{ℓ+1} + α``, and trust iff the receipt time precedes the
new freshness point.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.base import Heartbeat, HeartbeatFailureDetector, TimerHandle
from repro.errors import InvalidParameterError
from repro.metrics.transitions import SUSPECT, TRUST

__all__ = ["NFDU"]


class NFDU(HeartbeatFailureDetector):
    """The NFD-U algorithm with parameters ``eta`` (η) and ``alpha`` (α).

    Args:
        eta: heartbeat inter-sending time η (> 0).
        alpha: freshness slack α added to expected arrival times.
        expected_arrival: callable mapping a sequence number ``i`` to
            ``EA_i`` in q's local clock.  For the textbook NFD-U with a
            known constant expected delay, use
            ``lambda i: i * eta + expected_delay_offset``.
        first_seq: sequence number of the first heartbeat (1 in the paper).

    Note ``alpha`` may be negative as long as ``E(D) + α > 0`` — the
    analysis only needs the *effective* shift ``δ = E(D) + α`` to be
    positive; Theorem 11 additionally assumes ``α > 0`` for its bounds.
    """

    name = "nfd-u"

    def __init__(
        self,
        eta: float,
        alpha: float,
        expected_arrival: Callable[[int], float],
        first_seq: int = 1,
    ) -> None:
        super().__init__()
        if eta <= 0:
            raise InvalidParameterError(f"eta must be positive, got {eta}")
        self._eta = float(eta)
        self._alpha = float(alpha)
        self._expected_arrival = expected_arrival
        self._first_seq = int(first_seq)
        if first_seq < 1:
            raise InvalidParameterError(f"first_seq must be >= 1, got {first_seq}")
        # ℓ: largest sequence number received so far; ℓ = first_seq - 1
        # plays the role of the paper's initial ℓ = 0 (no message yet).
        self._ell = first_seq - 1
        self._tau_next: float = 0.0  # τ_{ℓ+1}; paper initializes τ_0 = 0
        self._timer: Optional[TimerHandle] = None

    @property
    def eta(self) -> float:
        return self._eta

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def max_seq(self) -> int:
        """ℓ — the largest sequence number received so far."""
        return self._ell

    @property
    def next_freshness_point(self) -> float:
        """``τ_{ℓ+1}`` in q's local clock."""
        return self._tau_next

    # ------------------------------------------------------------------ #
    # Algorithm (Fig. 9)
    # ------------------------------------------------------------------ #

    def _on_start(self) -> None:
        # Initialization: τ_0 = 0 (relative to q starting its clock at 0),
        # output S.  If q's clock is already past τ_0 the suspicion is
        # immediate, which _set_output(SUSPECT) captures.
        self._set_output(SUSPECT)
        self._tau_next = 0.0
        now = self.runtime.local_now()
        if self._tau_next > now:
            self._timer = self.runtime.call_at(self._tau_next, self._expired)

    def _expired(self) -> None:
        # Lines 5-6: the clock reached τ_{ℓ+1}; nothing received is fresh.
        self._set_output(SUSPECT)

    def on_heartbeat(self, heartbeat: Heartbeat) -> None:
        # Lines 8-11.
        if heartbeat.seq <= self._ell:
            return  # old or duplicate message: no effect
        self._ell = heartbeat.seq
        self._note_arrival(heartbeat)
        tau = self._expected_arrival(self._ell + 1) + self._alpha
        self._tau_next = tau
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        now = self.runtime.local_now()
        if now < tau:
            self._set_output(TRUST)
            self._timer = self.runtime.call_at(tau, self._expired)
        else:
            # m_ℓ is already stale on arrival: remain (or become) suspect.
            self._set_output(SUSPECT)

    def _note_arrival(self, heartbeat: Heartbeat) -> None:
        """Hook for subclasses (NFD-E feeds its EA estimator here)."""

    def describe(self) -> str:
        return f"NFD-U(eta={self._eta:g}, alpha={self._alpha:g})"
