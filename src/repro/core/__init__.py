"""The failure-detector algorithms.

* :class:`NFDS` — the paper's new detector for synchronized clocks
  (Fig. 6): freshness points ``τ_i = σ_i + δ``.
* :class:`NFDU` — unsynchronized drift-free clocks with known expected
  arrival times (Fig. 9): ``τ_i = EA_i + α``.
* :class:`NFDE` — NFD-U with the eq. (6.3) estimate of ``EA_i``; the
  practical algorithm.
* :class:`SimpleFD` — the "common algorithm" baseline (fixed timeout
  restarted on each heartbeat), optionally with the Section 7.2 cutoff.
* :class:`PhiAccrualFD` — the φ-accrual descendant (extension).
* :class:`AdaptiveNFDE` / :class:`AdaptiveController` — Section 8.1
  adaptivity.
"""

from repro.core.adaptive import AdaptiveController, AdaptiveNFDE
from repro.core.jacobson import JacobsonFD
from repro.core.base import DetectorRuntime, Heartbeat, HeartbeatFailureDetector
from repro.core.nfd_e import NFDE, ArrivalTimeEstimator
from repro.core.nfd_s import NFDS
from repro.core.nfd_u import NFDU
from repro.core.phi_accrual import PhiAccrualFD
from repro.core.registry import available_detectors, create_detector, register_detector
from repro.core.simple import SimpleFD, sfd_for_detection_bound

__all__ = [
    "Heartbeat",
    "DetectorRuntime",
    "HeartbeatFailureDetector",
    "NFDS",
    "NFDU",
    "NFDE",
    "ArrivalTimeEstimator",
    "SimpleFD",
    "sfd_for_detection_bound",
    "PhiAccrualFD",
    "JacobsonFD",
    "AdaptiveNFDE",
    "AdaptiveController",
    "available_detectors",
    "create_detector",
    "register_detector",
]
