"""Gossip-style failure detection (extension).

Van Renesse, Minsky & Hayden's *A Gossip-Style Failure Detection
Service* (Middleware '98) is the main alternative architecture the
paper's related-work section discusses — and criticizes for measuring
accuracy by the implementation-specific "probability of premature
timeouts" instead of implementation-independent QoS metrics
(Section 2.3's closing argument).

This package implements the protocol so that the criticism can be made
quantitative: :mod:`repro.experiments.gossip_comparison` evaluates
gossip with the *paper's* metrics (`T_D`, `E(T_MR)`, `P_A`) on the same
workloads as NFD, at matched per-process message budgets.
"""

from repro.gossip.node import GossipNode
from repro.gossip.simulation import GossipCluster, GossipResult, run_gossip

__all__ = ["GossipNode", "GossipCluster", "GossipResult", "run_gossip"]
