"""Cluster wiring and measurement for the gossip protocol.

Runs N gossip nodes on the discrete-event simulator over pairwise lossy
links and records, for a chosen (observer, subject) pair, the full S/T
output trace — so gossip is measured with exactly the paper's QoS
metrics rather than the "probability of premature timeouts" the paper
criticizes (Section 2.3).

Message-budget accounting: each node sends one vector per ``t_gossip``,
so its per-process send rate is ``1/t_gossip`` — directly comparable to
a heartbeat detector's ``(N−1)/η`` when it monitors everybody.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.gossip.node import GossipNode
from repro.metrics.transitions import SUSPECT, TRUST, OutputTrace
from repro.net.delays import DelayDistribution
from repro.sim.engine import Simulator

__all__ = ["GossipCluster", "GossipResult", "run_gossip"]


@dataclass
class GossipResult:
    """Measurements from one gossip run."""

    traces: Dict[Tuple[str, str], OutputTrace]
    messages_sent: int
    horizon: float
    crash_time: Optional[float]
    n_nodes: int
    detection_times: Dict[str, float] = field(default_factory=dict)

    @property
    def per_process_send_rate(self) -> float:
        # messages / (nodes * time); crashed nodes stop sending, which
        # slightly understates the rate — fine for budget comparisons.
        return self.messages_sent / (self.n_nodes * self.horizon)


class GossipCluster:
    """N gossip nodes over pairwise lossy links on one simulator."""

    def __init__(
        self,
        n_nodes: int,
        t_gossip: float,
        t_fail: float,
        delay: DelayDistribution,
        loss_probability: float,
        seed: int = 0,
    ) -> None:
        if n_nodes < 2:
            raise InvalidParameterError(f"need >= 2 nodes, got {n_nodes}")
        if not 0.0 <= loss_probability < 1.0:
            raise InvalidParameterError(
                f"loss_probability must be in [0,1), got {loss_probability}"
            )
        self.sim = Simulator()
        self._delay = delay
        self._p_l = float(loss_probability)
        self._rng = np.random.default_rng(seed)
        self.members = [f"n{i}" for i in range(n_nodes)]
        self.nodes: Dict[str, GossipNode] = {}
        self.messages_sent = 0
        for m in self.members:
            self.nodes[m] = GossipNode(
                node_id=m,
                members=self.members,
                t_gossip=t_gossip,
                t_fail=t_fail,
                send=self._transmit,
                # crc32, not hash(): str hashing is salted per process
                # and would make runs irreproducible.
                rng=np.random.default_rng(
                    np.random.SeedSequence([seed, zlib.crc32(m.encode())])
                ),
                now=lambda: self.sim.now,
            )
        self._t_gossip = float(t_gossip)
        # Observed pairs: (observer, subject) -> trace recording state.
        self._watch: Dict[Tuple[str, str], OutputTrace] = {}
        self._watch_state: Dict[Tuple[str, str], str] = {}
        self._wrapped: set = set()
        self._armed: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def _transmit(self, src: str, dst: str, payload: Dict[str, int]) -> None:
        self.messages_sent += 1
        if self._p_l > 0.0 and self._rng.random() < self._p_l:
            return
        d = float(self._delay.sample(self._rng, 1)[0])
        self.sim.schedule_at(
            self.sim.now + d, lambda: self.nodes[dst].receive(payload)
        )

    # ------------------------------------------------------------------ #
    # Watching pairs
    # ------------------------------------------------------------------ #

    def watch(self, observer: str, subject: str) -> None:
        """Record the S/T output of ``observer`` about ``subject``.

        Recording is exactly event-driven: trust can begin only when a
        receive event advances the subject's counter (the node's
        ``receive`` is wrapped to evaluate immediately), and suspicion
        begins exactly at the staleness deadline (tracked with a lazy
        timer that re-arms itself whenever fresh news moved the
        deadline).
        """
        if observer == subject:
            raise InvalidParameterError("observer must differ from subject")
        key = (observer, subject)
        self._watch[key] = OutputTrace(
            start_time=self.sim.now, initial_output=SUSPECT
        )
        self._watch_state[key] = SUSPECT
        node = self.nodes[observer]
        if observer not in self._wrapped:
            self._wrapped.add(observer)
            original = node.receive

            def receive_and_evaluate(payload, _orig=original, _obs=observer):
                _orig(payload)
                for k in list(self._watch):
                    if k[0] == _obs:
                        self._evaluate(k)

            node.receive = receive_and_evaluate  # type: ignore[method-assign]
        self._evaluate(key)

    def _evaluate(self, key: Tuple[str, str]) -> None:
        """Record a transition if the observer's view of subject flipped;
        keep exactly one lazy timer armed for the staleness deadline."""
        observer, subject = key
        node = self.nodes[observer]
        state = SUSPECT if node.suspects(subject) else TRUST
        if state != self._watch_state[key]:
            self._watch_state[key] = state
            self._watch[key].record(self.sim.now, state)
        if state == TRUST:
            deadline = node.suspicion_flip_time(subject)
            # Arm at most one timer per (key, deadline): re-arming on
            # every receive would leak one self-renewing timer each.
            if deadline > self.sim.now and self._armed.get(key) != deadline:
                self._armed[key] = deadline

                def fire(expected=deadline) -> None:
                    if self._armed.get(key) == expected:
                        self._armed.pop(key, None)
                        self._evaluate(key)

                self.sim.schedule_at(deadline, fire)

    # ------------------------------------------------------------------ #
    # Driving
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        for i, m in enumerate(self.members):
            # Stagger rounds uniformly to avoid synchronized bursts.
            offset = (i + 1) / (len(self.members) + 1) * self._t_gossip
            self._arm_round(m, self.sim.now + offset)

    def _arm_round(self, member: str, when: float) -> None:
        def fire() -> None:
            node = self.nodes[member]
            if node.crashed:
                return
            node.gossip_round()
            self._arm_round(member, self.sim.now + self._t_gossip)

        self.sim.schedule_at(when, fire)

    def crash(self, member: str) -> None:
        self.nodes[member].crashed = True

    def finish(self) -> Dict[Tuple[str, str], OutputTrace]:
        return {
            key: trace.close(self.sim.now)
            for key, trace in self._watch.items()
        }


def run_gossip(
    n_nodes: int,
    t_gossip: float,
    t_fail: float,
    delay: DelayDistribution,
    loss_probability: float,
    horizon: float,
    crash_member: Optional[str] = None,
    crash_time: Optional[float] = None,
    seed: int = 0,
) -> GossipResult:
    """Run a gossip cluster, watching every node's view of one subject.

    The *subject* is the crashed member when a crash is scheduled, else
    the last member; every other node observes it.
    """
    cluster = GossipCluster(
        n_nodes, t_gossip, t_fail, delay, loss_probability, seed=seed
    )
    subject = crash_member if crash_member else cluster.members[-1]
    for observer in cluster.members:
        if observer != subject:
            cluster.watch(observer, subject)
    cluster.start()
    if crash_member is not None:
        when = crash_time if crash_time is not None else horizon / 2.0
        cluster.sim.schedule_at(when, lambda: cluster.crash(crash_member))
    else:
        when = None
    cluster.sim.run_until(horizon)
    traces = cluster.finish()

    detection: Dict[str, float] = {}
    if crash_member is not None:
        for (observer, subj), trace in traces.items():
            if subj != crash_member:
                continue
            if trace.current_output != SUSPECT:
                detection[observer] = math.inf
                continue
            transitions = trace.transitions
            final = transitions[-1].time if transitions else trace.start_time
            detection[observer] = max(0.0, final - when)
    return GossipResult(
        traces=traces,
        messages_sent=cluster.messages_sent,
        horizon=horizon,
        crash_time=when,
        n_nodes=n_nodes,
        detection_times=detection,
    )
