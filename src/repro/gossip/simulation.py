"""Cluster wiring and measurement for the gossip protocol.

Runs N gossip nodes on the discrete-event simulator over pairwise lossy
links and records, for a chosen (observer, subject) pair, the full S/T
output trace — so gossip is measured with exactly the paper's QoS
metrics rather than the "probability of premature timeouts" the paper
criticizes (Section 2.3).

Message-budget accounting: each node sends one vector per ``t_gossip``,
so its per-process send rate is ``1/t_gossip`` — directly comparable to
a heartbeat detector's ``(N−1)/η`` when it monitors everybody.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.gossip.node import GossipNode
from repro.metrics.transitions import SUSPECT, TRUST, OutputTrace
from repro.net.delays import DelayDistribution
from repro.sim.engine import Simulator

__all__ = ["GossipCluster", "GossipResult", "run_gossip", "payload_size_bytes"]

#: callback signature for cluster transition listeners:
#: ``listener(observer, subject, time, output)`` with output "S"/"T".
TransitionListener = Callable[[str, str, float, str], None]


def payload_size_bytes(payload) -> int:
    """Approximate wire size of one gossip payload, in bytes.

    Counters cost 8 bytes per entry plus a small per-name overhead;
    digest blobs are asked for their own ``packed_size_bytes()`` when
    they provide one (the hierarchy's shard digests do), else charged a
    flat word.  This is an accounting model, not a serializer — it keeps
    byte-budget comparisons honest without pulling in a codec.
    """
    counters = payload
    digests = {}
    if isinstance(payload.get("counters"), dict):
        counters = payload["counters"]
        digests = payload.get("digests") or {}
    size = sum(8 + len(name) for name in counters)
    for _origin, (_version, blob) in digests.items():
        packed = getattr(blob, "packed_size_bytes", None)
        size += 12 + (int(packed()) if callable(packed) else 8)
    return size


@dataclass
class GossipResult:
    """Measurements from one gossip run."""

    traces: Dict[Tuple[str, str], OutputTrace]
    messages_sent: int
    horizon: float
    crash_time: Optional[float]
    n_nodes: int
    detection_times: Dict[str, float] = field(default_factory=dict)
    #: integral of the number of *alive* nodes over the run, in
    #: node-time units; ``None`` (legacy constructions) falls back to
    #: ``n_nodes * horizon``.
    alive_node_time: Optional[float] = None
    bytes_sent: int = 0

    @property
    def per_process_send_rate(self) -> float:
        """Messages per unit time per *alive* process.

        The denominator integrates alive-node time: a node crashed at
        ``t_c`` contributes ``t_c``, not ``horizon``.  Dividing by
        ``n_nodes * horizon`` (the old accounting) diluted the rate with
        dead time, biasing any budget-matched comparison by the crash
        scenario itself.
        """
        denom = (
            self.alive_node_time
            if self.alive_node_time is not None
            else self.n_nodes * self.horizon
        )
        if denom <= 0.0:
            return math.nan
        return self.messages_sent / denom


class GossipCluster:
    """N gossip nodes over pairwise lossy links on one simulator."""

    def __init__(
        self,
        n_nodes: int,
        t_gossip: float,
        t_fail: float,
        delay: DelayDistribution,
        loss_probability: float,
        seed: int = 0,
        sim: Optional[Simulator] = None,
        member_names: Optional[Sequence[str]] = None,
    ) -> None:
        if n_nodes < 2:
            raise InvalidParameterError(f"need >= 2 nodes, got {n_nodes}")
        if not 0.0 <= loss_probability < 1.0:
            raise InvalidParameterError(
                f"loss_probability must be in [0,1), got {loss_probability}"
            )
        if member_names is not None and len(member_names) != n_nodes:
            raise InvalidParameterError(
                f"member_names has {len(member_names)} entries for "
                f"{n_nodes} nodes"
            )
        # Sharing an external simulator lets the gossip plane co-run
        # with other subsystems (the hierarchy's leaf monitors) in one
        # virtual timeline.
        self.sim = sim if sim is not None else Simulator()
        self._delay = delay
        self._p_l = float(loss_probability)
        self._rng = np.random.default_rng(seed)
        self.members = (
            list(member_names)
            if member_names is not None
            else [f"n{i}" for i in range(n_nodes)]
        )
        self.nodes: Dict[str, GossipNode] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        #: actual crash times, recorded by :meth:`crash` (first crash
        #: wins) — the alive-node-time integral is derived from these.
        self.crash_times: Dict[str, float] = {}
        self._listeners: List[TransitionListener] = []
        for m in self.members:
            self.nodes[m] = GossipNode(
                node_id=m,
                members=self.members,
                t_gossip=t_gossip,
                t_fail=t_fail,
                send=self._transmit,
                # crc32, not hash(): str hashing is salted per process
                # and would make runs irreproducible.
                rng=np.random.default_rng(
                    np.random.SeedSequence([seed, zlib.crc32(m.encode())])
                ),
                now=lambda: self.sim.now,
            )
        self._t_gossip = float(t_gossip)
        # Observed pairs: (observer, subject) -> trace recording state.
        self._watch: Dict[Tuple[str, str], OutputTrace] = {}
        self._watch_state: Dict[Tuple[str, str], str] = {}
        self._wrapped: set = set()
        self._armed: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def _transmit(self, src: str, dst: str, payload: Dict[str, int]) -> None:
        self.messages_sent += 1
        self.bytes_sent += payload_size_bytes(payload)
        if self._p_l > 0.0 and self._rng.random() < self._p_l:
            return
        d = float(self._delay.sample(self._rng, 1)[0])
        self.sim.schedule_at(
            self.sim.now + d, lambda: self.nodes[dst].receive(payload)
        )

    def set_loss_probability(self, loss_probability: float) -> None:
        """Change the plane's loss rate mid-run (burst/flap injection).

        Messages already in flight keep their fate; only future sends
        draw against the new rate — same regime-change semantics as
        :meth:`repro.net.link.LossyLink.set_conditions`.
        """
        if not 0.0 <= loss_probability < 1.0:
            raise InvalidParameterError(
                f"loss_probability must be in [0,1), got {loss_probability}"
            )
        self._p_l = float(loss_probability)

    # ------------------------------------------------------------------ #
    # Watching pairs
    # ------------------------------------------------------------------ #

    def watch(self, observer: str, subject: str) -> None:
        """Record the S/T output of ``observer`` about ``subject``.

        Recording is exactly event-driven: trust can begin only when a
        receive event advances the subject's counter (the node's
        ``receive`` is wrapped to evaluate immediately), and suspicion
        begins exactly at the staleness deadline (tracked with a lazy
        timer that re-arms itself whenever fresh news moved the
        deadline).
        """
        if observer == subject:
            raise InvalidParameterError("observer must differ from subject")
        key = (observer, subject)
        self._watch[key] = OutputTrace(
            start_time=self.sim.now, initial_output=SUSPECT
        )
        self._watch_state[key] = SUSPECT
        node = self.nodes[observer]
        if observer not in self._wrapped:
            self._wrapped.add(observer)
            original = node.receive

            def receive_and_evaluate(payload, _orig=original, _obs=observer):
                _orig(payload)
                for k in list(self._watch):
                    if k[0] == _obs:
                        self._evaluate(k)

            node.receive = receive_and_evaluate  # type: ignore[method-assign]
        self._evaluate(key)

    def subscribe(self, listener: TransitionListener) -> None:
        """Register ``listener(observer, subject, time, output)`` to be
        called on every recorded watch transition (the hierarchy layer
        drives its root-side leaf-staleness masking off this)."""
        self._listeners.append(listener)

    def watched_output(self, observer: str, subject: str) -> str:
        """The currently *recorded* output for a watched pair."""
        try:
            return self._watch_state[(observer, subject)]
        except KeyError:
            raise InvalidParameterError(
                f"pair ({observer!r}, {subject!r}) is not watched"
            ) from None

    def _evaluate(self, key: Tuple[str, str]) -> None:
        """Record a transition if the observer's view of subject flipped;
        keep exactly one lazy timer armed for the staleness deadline."""
        observer, subject = key
        node = self.nodes[observer]
        state = SUSPECT if node.suspects(subject) else TRUST
        if state != self._watch_state[key]:
            self._watch_state[key] = state
            self._watch[key].record(self.sim.now, state)
            for listener in self._listeners:
                listener(observer, subject, self.sim.now, state)
        if state == TRUST:
            deadline = node.suspicion_flip_time(subject)
            # Arm at most one timer per (key, deadline): re-arming on
            # every receive would leak one self-renewing timer each.
            # The deadline boundary is *closed* (suspects() flips at
            # ``now == deadline``), so the guard admits equality too: a
            # TRUST verdict co-timed with its own deadline — possible
            # only through float pathology — still gets a timer that
            # fires immediately rather than silently never re-arming.
            if deadline >= self.sim.now and self._armed.get(key) != deadline:
                self._armed[key] = deadline

                def fire(expected=deadline) -> None:
                    if self._armed.get(key) == expected:
                        self._armed.pop(key, None)
                        self._evaluate(key)

                self.sim.schedule_at(deadline, fire)

    # ------------------------------------------------------------------ #
    # Driving
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        for i, m in enumerate(self.members):
            # Stagger rounds uniformly to avoid synchronized bursts.
            offset = (i + 1) / (len(self.members) + 1) * self._t_gossip
            self._arm_round(m, self.sim.now + offset)

    def _arm_round(self, member: str, when: float) -> None:
        def fire() -> None:
            node = self.nodes[member]
            if node.crashed:
                return
            node.gossip_round()
            self._arm_round(member, self.sim.now + self._t_gossip)

        self.sim.schedule_at(when, fire)

    def crash(self, member: str) -> None:
        """Crash ``member`` now.  Idempotent; the first crash time is
        recorded for alive-node-time accounting."""
        node = self.nodes.get(member)
        if node is None:
            raise InvalidParameterError(
                f"unknown member {member!r}; cluster members are "
                f"{', '.join(self.members)}"
            )
        node.crashed = True
        self.crash_times.setdefault(member, self.sim.now)

    def alive_node_time(self, horizon: float) -> float:
        """Integral of the alive-node count over ``[0, horizon]``."""
        return float(
            sum(
                min(self.crash_times.get(m, horizon), horizon)
                for m in self.members
            )
        )

    def finish(self) -> Dict[Tuple[str, str], OutputTrace]:
        return {
            key: trace.close(self.sim.now)
            for key, trace in self._watch.items()
        }


def run_gossip(
    n_nodes: int,
    t_gossip: float,
    t_fail: float,
    delay: DelayDistribution,
    loss_probability: float,
    horizon: float,
    crash_member: Optional[str] = None,
    crash_time: Optional[float] = None,
    seed: int = 0,
) -> GossipResult:
    """Run a gossip cluster, watching every node's view of one subject.

    The *subject* is the crashed member when a crash is scheduled, else
    the last member; every other node observes it.
    """
    if horizon <= 0.0:
        raise InvalidParameterError(f"horizon must be positive, got {horizon}")
    if crash_time is not None and crash_member is None:
        raise InvalidParameterError(
            "crash_time given without crash_member (it would be silently "
            "ignored); pass the member to crash as well"
        )
    cluster = GossipCluster(
        n_nodes, t_gossip, t_fail, delay, loss_probability, seed=seed
    )
    if crash_member is not None and crash_member not in cluster.nodes:
        raise InvalidParameterError(
            f"crash_member {crash_member!r} is not in the cluster; "
            f"members are n0..n{n_nodes - 1}"
        )
    if crash_member is not None:
        when = crash_time if crash_time is not None else horizon / 2.0
        if not 0.0 <= when < horizon:
            raise InvalidParameterError(
                f"crash_time must lie inside [0, horizon={horizon:g}) so "
                f"the crash can be observed, got {when:g}"
            )
    else:
        when = None
    subject = crash_member if crash_member else cluster.members[-1]
    for observer in cluster.members:
        if observer != subject:
            cluster.watch(observer, subject)
    cluster.start()
    if when is not None:
        cluster.sim.schedule_at(when, lambda: cluster.crash(crash_member))
    cluster.sim.run_until(horizon)
    traces = cluster.finish()

    detection: Dict[str, float] = {}
    if crash_member is not None:
        for (observer, subj), trace in traces.items():
            if subj != crash_member:
                continue
            if trace.current_output != SUSPECT:
                detection[observer] = math.inf
                continue
            transitions = trace.transitions
            final = transitions[-1].time if transitions else trace.start_time
            detection[observer] = max(0.0, final - when)
    return GossipResult(
        traces=traces,
        messages_sent=cluster.messages_sent,
        horizon=horizon,
        crash_time=when,
        n_nodes=n_nodes,
        detection_times=detection,
        alive_node_time=cluster.alive_node_time(horizon),
        bytes_sent=cluster.bytes_sent,
    )
