"""One node of the gossip failure-detection protocol.

Protocol (van Renesse et al. 1998, basic variant):

* every node keeps a *heartbeat vector*: for each known member, a
  counter and the local time at which that counter last increased;
* every ``t_gossip`` the node increments its own counter and sends its
  whole vector to one uniformly random other member;
* on receiving a vector it merges entry-wise maxima, stamping the local
  receipt time wherever a counter increased;
* it *suspects* any member whose counter has not increased for
  ``t_fail`` local time units.

The node is transport-agnostic: the cluster wiring (who delivers what,
with which delays/losses) lives in :mod:`repro.gossip.simulation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["VectorEntry", "GossipNode"]


@dataclass
class VectorEntry:
    """One member's heartbeat state as seen by a node."""

    counter: int
    last_increase: float  # local time of the last counter increase


class GossipNode:
    """A gossip participant.

    Args:
        node_id: this node's identity.
        members: all member identities (including this node).
        t_gossip: gossip period.
        t_fail: suspicion threshold on counter staleness.
        send: callback ``send(src, dst, vector_copy)`` used each round.
        rng: random generator for peer selection.
        now: callback returning the node's local time.
    """

    def __init__(
        self,
        node_id: str,
        members: Sequence[str],
        t_gossip: float,
        t_fail: float,
        send: Callable[[str, str, Dict[str, int]], None],
        rng: np.random.Generator,
        now: Callable[[], float],
    ) -> None:
        if t_gossip <= 0 or t_fail <= 0:
            raise InvalidParameterError("t_gossip and t_fail must be positive")
        if t_fail <= t_gossip:
            raise InvalidParameterError(
                "t_fail must exceed t_gossip (otherwise every member is "
                "suspected between rounds)"
            )
        if node_id not in members:
            raise InvalidParameterError("node_id must be one of members")
        if len(set(members)) != len(members):
            raise InvalidParameterError("duplicate member ids")
        self.node_id = node_id
        self._peers = [m for m in members if m != node_id]
        if not self._peers:
            raise InvalidParameterError("need at least two members")
        self._t_gossip = float(t_gossip)
        self._t_fail = float(t_fail)
        self._send = send
        self._rng = rng
        self._now = now
        start = now()
        self._vector: Dict[str, VectorEntry] = {
            m: VectorEntry(counter=0, last_increase=start) for m in members
        }
        self.crashed = False

    @property
    def t_gossip(self) -> float:
        return self._t_gossip

    @property
    def t_fail(self) -> float:
        return self._t_fail

    @property
    def vector(self) -> Dict[str, VectorEntry]:
        return self._vector

    # ------------------------------------------------------------------ #
    # Protocol actions
    # ------------------------------------------------------------------ #

    def gossip_round(self) -> Optional[str]:
        """Increment own counter and gossip to one random peer.

        Returns the chosen peer (None if this node has crashed).
        """
        if self.crashed:
            return None
        me = self._vector[self.node_id]
        me.counter += 1
        me.last_increase = self._now()
        peer = self._peers[int(self._rng.integers(len(self._peers)))]
        payload = {m: e.counter for m, e in self._vector.items()}
        self._send(self.node_id, peer, payload)
        return peer

    def receive(self, payload: Dict[str, int]) -> None:
        """Merge a received heartbeat vector (entry-wise maximum)."""
        if self.crashed:
            return
        now = self._now()
        for member, counter in payload.items():
            entry = self._vector.get(member)
            if entry is None:
                self._vector[member] = VectorEntry(counter, now)
            elif counter > entry.counter:
                entry.counter = counter
                entry.last_increase = now

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def suspects(self, member: str) -> bool:
        """Whether this node currently suspects ``member``."""
        if member == self.node_id:
            return False
        entry = self._vector[member]
        return self._now() - entry.last_increase > self._t_fail

    def suspected_set(self) -> frozenset:
        return frozenset(
            m for m in self._vector if m != self.node_id and self.suspects(m)
        )

    def suspicion_flip_time(self, member: str) -> float:
        """Local time at which ``member`` becomes suspected, absent news."""
        return self._vector[member].last_increase + self._t_fail
