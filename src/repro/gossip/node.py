"""One node of the gossip failure-detection protocol.

Protocol (van Renesse et al. 1998, basic variant):

* every node keeps a *heartbeat vector*: for each known member, a
  counter and the local time at which that counter last increased;
* every ``t_gossip`` the node increments its own counter and sends its
  whole vector to one uniformly random other member;
* on receiving a vector it merges entry-wise maxima, stamping the local
  receipt time wherever a counter increased;
* it *suspects* any member whose counter has not increased for
  ``t_fail`` local time units.

The node is transport-agnostic: the cluster wiring (who delivers what,
with which delays/losses) lives in :mod:`repro.gossip.simulation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["VectorEntry", "GossipNode"]

#: key discriminating a composite (counters + digests) gossip payload
#: from a plain heartbeat-vector payload.  Plain payload values are
#: ``int`` counters, so a ``dict`` under this key cannot be confused
#: with a member named "counters".
_COUNTERS_KEY = "counters"
_DIGESTS_KEY = "digests"


@dataclass
class VectorEntry:
    """One member's heartbeat state as seen by a node."""

    counter: int
    last_increase: float  # local time of the last counter increase


class GossipNode:
    """A gossip participant.

    Args:
        node_id: this node's identity.
        members: all member identities (including this node).
        t_gossip: gossip period.
        t_fail: suspicion threshold on counter staleness.
        send: callback ``send(src, dst, vector_copy)`` used each round.
        rng: random generator for peer selection.
        now: callback returning the node's local time.
    """

    def __init__(
        self,
        node_id: str,
        members: Sequence[str],
        t_gossip: float,
        t_fail: float,
        send: Callable[[str, str, Dict[str, int]], None],
        rng: np.random.Generator,
        now: Callable[[], float],
    ) -> None:
        if t_gossip <= 0 or t_fail <= 0:
            raise InvalidParameterError("t_gossip and t_fail must be positive")
        if t_fail <= t_gossip:
            raise InvalidParameterError(
                "t_fail must exceed t_gossip (otherwise every member is "
                "suspected between rounds)"
            )
        if node_id not in members:
            raise InvalidParameterError("node_id must be one of members")
        if len(set(members)) != len(members):
            raise InvalidParameterError("duplicate member ids")
        self.node_id = node_id
        self._peers = [m for m in members if m != node_id]
        if not self._peers:
            raise InvalidParameterError("need at least two members")
        self._t_gossip = float(t_gossip)
        self._t_fail = float(t_fail)
        self._send = send
        self._rng = rng
        self._now = now
        start = now()
        self._vector: Dict[str, VectorEntry] = {
            m: VectorEntry(counter=0, last_increase=start) for m in members
        }
        self.crashed = False
        # ---- digest plane (optional) --------------------------------- #
        # Anti-entropy dissemination of opaque per-origin payloads: each
        # publishing node keeps a monotone version for its own digest;
        # receivers merge entries per origin by highest version.  The
        # hierarchy layer rides its shard-status digests on this.
        self._digests: Dict[str, Tuple[int, Any]] = {}
        self._digest_version = 0
        #: when set, called at every gossip round to refresh this node's
        #: own digest payload (the returned object is published under a
        #: freshly bumped version).
        self.digest_source: Optional[Callable[[], Any]] = None
        #: when set, called as ``on_digest(origin, version, payload)``
        #: each time a strictly newer digest version for ``origin`` is
        #: learned from a received message.
        self.on_digest: Optional[Callable[[str, int, Any], None]] = None

    @property
    def t_gossip(self) -> float:
        return self._t_gossip

    @property
    def t_fail(self) -> float:
        return self._t_fail

    @property
    def vector(self) -> Dict[str, VectorEntry]:
        return self._vector

    # ------------------------------------------------------------------ #
    # Protocol actions
    # ------------------------------------------------------------------ #

    def gossip_round(self) -> Optional[str]:
        """Increment own counter and gossip to one random peer.

        Returns the chosen peer (None if this node has crashed).
        """
        if self.crashed:
            return None
        me = self._vector[self.node_id]
        me.counter += 1
        me.last_increase = self._now()
        if self.digest_source is not None:
            self.publish_digest(self.digest_source())
        peer = self._peers[int(self._rng.integers(len(self._peers)))]
        counters = {m: e.counter for m, e in self._vector.items()}
        if self._digests:
            payload: Any = {
                _COUNTERS_KEY: counters,
                _DIGESTS_KEY: dict(self._digests),
            }
        else:
            payload = counters
        self._send(self.node_id, peer, payload)
        return peer

    def receive(self, payload: Dict[str, Any]) -> None:
        """Merge a received heartbeat vector (entry-wise maximum).

        Composite payloads (``{"counters": {...}, "digests": {...}}``)
        additionally merge the digest plane per origin by highest
        version; plain counter dicts are accepted unchanged.
        """
        if self.crashed:
            return
        counters = payload
        if isinstance(payload.get(_COUNTERS_KEY), dict):
            counters = payload[_COUNTERS_KEY]
            self._merge_digests(payload.get(_DIGESTS_KEY) or {})
        now = self._now()
        for member, counter in counters.items():
            entry = self._vector.get(member)
            if entry is None:
                self._vector[member] = VectorEntry(counter, now)
            elif counter > entry.counter:
                entry.counter = counter
                entry.last_increase = now

    # ------------------------------------------------------------------ #
    # Digest plane
    # ------------------------------------------------------------------ #

    def publish_digest(self, payload: Any) -> int:
        """Publish ``payload`` as this node's digest; returns the version.

        Each publish bumps a monotone per-origin version, so receivers
        can merge concurrent copies deterministically (highest version
        wins) and re-publishing doubles as a digest-plane freshness
        signal.
        """
        self._digest_version += 1
        self._digests[self.node_id] = (self._digest_version, payload)
        return self._digest_version

    def digest(self, origin: str) -> Optional[Tuple[int, Any]]:
        """The newest ``(version, payload)`` known for ``origin``."""
        return self._digests.get(origin)

    @property
    def digests(self) -> Dict[str, Tuple[int, Any]]:
        return dict(self._digests)

    def _merge_digests(self, incoming: Dict[str, Tuple[int, Any]]) -> None:
        for origin, (version, blob) in incoming.items():
            if origin == self.node_id:
                # We are the sole publisher under our own origin: an
                # echo never replaces the local payload, but its
                # version raises the publish-counter floor so the next
                # publish dominates every copy still circulating (e.g.
                # after a restart lost the counter).
                self._digest_version = max(self._digest_version, version)
                continue
            held = self._digests.get(origin)
            if held is None or version > held[0]:
                self._digests[origin] = (version, blob)
                if self.on_digest is not None:
                    self.on_digest(origin, version, blob)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def suspects(self, member: str) -> bool:
        """Whether this node currently suspects ``member``.

        Suspicion begins *exactly* at the staleness deadline
        ``last_increase + t_fail`` (closed boundary), and the comparison
        is written against that same sum — not as ``now - last_increase
        > t_fail`` — so an evaluation scheduled at
        :meth:`suspicion_flip_time` agrees with this predicate to the
        last floating-point bit.  (The old strict-``>`` difference form
        made a timer firing at the deadline see "not yet suspected" and,
        with nothing left to re-arm it, deferred the S transition to the
        next receive — overstating detection time by up to a full gossip
        inter-arrival.)
        """
        if member == self.node_id:
            return False
        entry = self._vector[member]
        return self._now() >= entry.last_increase + self._t_fail

    def suspected_set(self) -> frozenset:
        return frozenset(
            m for m in self._vector if m != self.node_id and self.suspects(m)
        )

    def suspicion_flip_time(self, member: str) -> float:
        """Local time at which ``member`` becomes suspected, absent news."""
        return self._vector[member].last_increase + self._t_fail
