"""Analytic approximation of NFD-E's accuracy — extension.

The paper evaluates NFD-E (estimated expected arrival times, eq. 6.3)
only by simulation.  A second-order model captures the estimation
penalty well:

The eq. (6.3) estimate averages ``n`` normalized receipt times, each
equal to (constant) + delay of that receipt.  Hence the estimate of
``EA_{ℓ+1}`` carries a zero-mean error ``ε`` with ``Var(ε) = V(D)/n``
(delays are i.i.d., and we neglect the small correlation between ε and
the *current* window's message delays — the same independence idealization
the paper makes for heartbeats).  NFD-E therefore behaves like NFD-U
whose freshness shift is randomly perturbed per freshness point:

    ``δ_eff = E(D) + α + ε``.

Averaging Theorem 5's per-window mistake probability over ε with
Gauss-Hermite quadrature yields

    ``E(T_MR) ≈ η / E_ε[p_s(δ + ε)]``,
    ``E(T_M)  ≈ E_ε[∫ u dx] / E_ε[p_s]``,

which converges to the exact NFD-U values as ``n → ∞`` and reproduces
the measured small-window penalty of the E5 ablation (validated in
``tests/analysis/test_nfde_theory.py``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.nfds_theory import NFDSAnalysis
from repro.errors import InvalidParameterError
from repro.net.delays import DelayDistribution

__all__ = ["nfde_approximation"]


def nfde_approximation(
    eta: float,
    alpha: float,
    loss_probability: float,
    delay: DelayDistribution,
    window: int,
    quadrature_points: int = 21,
) -> dict:
    """Approximate NFD-E's ``E(T_MR)``/``E(T_M)``/``P_A``.

    Args:
        eta, alpha: the NFD-E parameters.
        loss_probability, delay: the network model.
        window: the EA-estimation window n (eq. 6.3).
        quadrature_points: Gauss-Hermite points for averaging over the
            estimation noise.

    Returns a dict with keys ``e_tmr``, ``e_tm``, ``query_accuracy``
    and ``sigma_ea`` (the modelled EA-noise standard deviation).
    """
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    if quadrature_points < 3:
        raise InvalidParameterError("need at least 3 quadrature points")
    sigma = math.sqrt(delay.variance / window)
    base_delta = delay.mean + alpha

    # Gauss-Hermite: integrate f(eps) * N(0, sigma^2) d eps.
    nodes, weights = np.polynomial.hermite_e.hermegauss(quadrature_points)
    # hermegauss integrates against exp(-x^2/2); normalize to a pdf.
    weights = weights / weights.sum()

    p_s_sum = 0.0
    int_u_sum = 0.0
    for node, weight in zip(nodes, weights):
        delta = base_delta + sigma * float(node)
        if delta <= 0:
            # Estimation noise pushed the freshness point before the
            # send time: every window is a mistake.  p_s saturates.
            p_s_sum += weight * 1.0
            int_u_sum += weight * eta
            continue
        analysis = NFDSAnalysis(eta, delta, loss_probability, delay)
        p_s_sum += weight * analysis.p_s
        int_u_sum += weight * analysis.integral_u()

    e_tmr = math.inf if p_s_sum == 0 else eta / p_s_sum
    e_tm = 0.0 if p_s_sum == 0 else int_u_sum / p_s_sum
    return {
        "e_tmr": e_tmr,
        "e_tm": e_tm,
        "query_accuracy": 1.0 - int_u_sum / eta,
        "sigma_ea": sigma,
    }
