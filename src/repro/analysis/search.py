"""Robust "largest feasible η" search shared by the configurators.

Each configuration procedure (Sections 4, 5, 6) reduces to: given a
function ``f`` with ``f(η) → ∞ (exponentially) as η → 0`` and a target
``T_MR^L``, find the largest ``η ≤ η_max`` with ``f(η) ≥ T_MR^L``.

``f`` contains ``⌈·⌉`` terms, so it is only *piecewise* monotone — it
jumps at η values where the number of product terms changes.  The paper
prescribes plain binary search ("this works because, when η decreases,
f(η) increases exponentially fast"); we harden it slightly:

1. work in log space (the products of hundreds of factors under/overflow
   doubles);
2. bracket by repeated halving from ``η_max`` — guaranteed to terminate by
   Theorem 7's part 3 argument;
3. bisect, keeping the invariant feasible(lo) ∧ ¬feasible(hi);
4. *verify* the returned η against the predicate, so a non-monotonicity
   can never produce an infeasible output (it can only cost optimality,
   exactly as in the paper).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import ConfigurationError

__all__ = ["largest_feasible_eta"]


def largest_feasible_eta(
    log_f: Callable[[float], float],
    eta_max: float,
    target: float,
    rel_tol: float = 1e-10,
    max_halvings: int = 200,
) -> float:
    """Largest ``η ≤ eta_max`` with ``f(η) ≥ target`` (up to ``rel_tol``).

    Args:
        log_f: returns ``log f(η)``; may return ``+inf`` (perfect
            accuracy) but must be finite or ``+inf`` for all η in
            ``(0, eta_max]``.
        eta_max: upper limit for η (from Step 1 of each procedure).
        target: the requirement ``T_MR^L`` (in linear space, > 0).
        rel_tol: relative precision of the bisection.
        max_halvings: safety cap on the bracketing phase.

    Raises:
        ConfigurationError: if no feasible η is found after
            ``max_halvings`` halvings (cannot happen for the paper's f's
            unless the caller's eta_max is wrong).
    """
    if eta_max <= 0:
        raise ConfigurationError(f"eta_max must be positive, got {eta_max}")
    if target <= 0:
        raise ConfigurationError(f"target must be positive, got {target}")
    log_target = math.log(target)

    def feasible(eta: float) -> bool:
        return log_f(eta) >= log_target

    if feasible(eta_max):
        return eta_max

    # Bracket: halve until feasible.  f grows exponentially as η shrinks,
    # so this terminates quickly for any realistic requirement.
    hi = eta_max
    lo = eta_max / 2.0
    halvings = 0
    while not feasible(lo):
        hi = lo
        lo /= 2.0
        halvings += 1
        if halvings > max_halvings:
            raise ConfigurationError(
                "could not bracket a feasible eta; requirements may be "
                "astronomically strict or f is not diverging as eta -> 0"
            )

    # Bisect: invariant feasible(lo) and not feasible(hi).
    while hi - lo > rel_tol * hi:
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            lo = mid
        else:
            hi = mid

    assert feasible(lo)
    return lo
