"""Proposition 8: how far from optimal can the Section 4 procedure be?

The Section 4 procedure outputs *a* feasible ``η``, not necessarily the
largest one.  Proposition 8 gives a distribution-free ceiling: to satisfy
the QoS requirements with NFD-S at all, η must satisfy

    ``η ≤ η_max / (p_L + (1−p_L)·P(D > T_D^U))``

with ``η_max = q'_0 · T_M^U`` from Step 1.  Comparing the procedure's
output against this ceiling bounds the bandwidth sub-optimality.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.metrics.qos import QoSRequirements
from repro.net.delays import DelayDistribution

__all__ = ["eta_upper_bound"]


def eta_upper_bound(
    requirements: QoSRequirements,
    loss_probability: float,
    delay: DelayDistribution,
) -> float:
    """Proposition 8's upper bound on any feasible NFD-S ``η``."""
    if not 0.0 <= loss_probability < 1.0:
        raise InvalidParameterError(
            f"loss_probability must be in [0,1), got {loss_probability}"
        )
    t_d_u = requirements.detection_time_upper
    q0_prime = (1.0 - loss_probability) * float(delay.prob_less(t_d_u))
    eta_max = q0_prime * requirements.mistake_duration_upper
    tail = loss_probability + (1.0 - loss_probability) * float(
        delay.sf(t_d_u)
    )
    if tail == 0.0:
        # No loss and delays never exceed T_D^U: Proposition 8 puts no
        # finite ceiling on eta.
        return float("inf")
    return eta_max / tail
