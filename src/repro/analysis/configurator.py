"""Section 4: configuring NFD-S when the network behaviour is known.

Given QoS requirements ``(T_D^U, T_MR^L, T_M^U)`` and the network
behaviour ``(p_L, P(D ≤ x))``, compute parameters ``(η, δ)`` such that
NFD-S satisfies the requirements (Theorem 7), using as large an η — i.e.
as little bandwidth — as the procedure can certify:

* Step 1: ``q'_0 = (1−p_L)·P(D < T_D^U)``; ``η_max = q'_0 · T_M^U``.
  If ``η_max = 0``: *no failure detector whatsoever* can achieve the
  requirements (Theorem 7 case 2) — we raise
  :class:`~repro.errors.QoSUnachievableError`.
* Step 2: find the largest ``η ≤ η_max`` with ``f(η) ≥ T_MR^L`` where

  ``f(η) = η / (q'_0 · Π_{j=1}^{⌈T_D^U/η⌉−1} [p_L + (1−p_L)·P(D > T_D^U − jη)])``.

* Step 3: ``δ = T_D^U − η``.

The paper's worked example (T_D^U = 30 s, T_MR^L = 30 days, T_M^U = 60 s,
p_L = 0.01, exponential delays with mean 0.02 s) yields η ≈ 9.97,
δ ≈ 20.03 — reproduced in the test suite and benchmark E3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.nfds_theory import NFDSAnalysis, QoSPrediction
from repro.analysis.search import largest_feasible_eta
from repro.errors import InvalidParameterError, QoSUnachievableError
from repro.metrics.qos import QoSRequirements
from repro.net.delays import DelayDistribution

__all__ = ["NFDSConfig", "configure_nfds"]


@dataclass(frozen=True)
class NFDSConfig:
    """Output of a configuration procedure for NFD-S."""

    eta: float
    delta: float
    eta_max: float
    requirements: QoSRequirements

    @property
    def detection_time_bound(self) -> float:
        return self.eta + self.delta


def configure_nfds(
    requirements: QoSRequirements,
    loss_probability: float,
    delay: DelayDistribution,
) -> NFDSConfig:
    """The Section 4 configuration procedure.

    Raises:
        QoSUnachievableError: when ``η_max = 0`` — by Theorem 7 no failure
            detector can achieve the requirements in this system.
    """
    if not 0.0 <= loss_probability < 1.0:
        raise InvalidParameterError(
            f"loss_probability must be in [0,1), got {loss_probability}"
        )
    t_d_u = requirements.detection_time_upper
    t_mr_l = requirements.mistake_recurrence_lower
    t_m_u = requirements.mistake_duration_upper

    # Step 1
    q0_prime = (1.0 - loss_probability) * float(delay.prob_less(t_d_u))
    eta_max = q0_prime * t_m_u
    if eta_max == 0.0:
        raise QoSUnachievableError(
            "q'_0 = 0: no message is ever received within T_D^U of being "
            "sent, so no failure detector can satisfy the requirements"
        )
    # η may not exceed T_D^U (δ = T_D^U − η must be >= 0).
    eta_max = min(eta_max, t_d_u)

    # Step 2 — log-space f to survive products of hundreds of factors.
    # The product over j is evaluated in one vectorized CDF call: the
    # bisection re-evaluates f dozens of times, and for tight requirements
    # n_terms runs into the hundreds.
    def log_f(eta: float) -> float:
        n_terms = int(math.ceil(t_d_u / eta - 1e-12)) - 1
        log_prod = 0.0
        if n_terms > 0:
            j = np.arange(1, n_terms + 1)
            sf = np.asarray(delay.sf(t_d_u - j * eta), dtype=float)
            terms = loss_probability + (1.0 - loss_probability) * sf
            if np.any(terms == 0.0):
                return math.inf  # perfect accuracy: every mistake impossible
            log_prod = float(np.sum(np.log(terms)))
        return math.log(eta) - math.log(q0_prime) - log_prod

    eta = largest_feasible_eta(log_f, eta_max, t_mr_l)

    # Step 3
    delta = t_d_u - eta
    return NFDSConfig(
        eta=eta, delta=delta, eta_max=eta_max, requirements=requirements
    )


def verify_nfds_config(
    config: NFDSConfig,
    loss_probability: float,
    delay: DelayDistribution,
) -> QoSPrediction:
    """Evaluate the exact Theorem 5 QoS of a configuration.

    Provided for auditing: Theorem 7 guarantees the procedure's output
    satisfies the requirements; this function lets callers (and tests)
    check it against the exact formulas rather than trust the derivation.
    """
    analysis = NFDSAnalysis(
        eta=config.eta,
        delta=config.delta,
        loss_probability=loss_probability,
        delay=delay,
    )
    return analysis.predict()
