"""Section 5: configuring NFD-S when only ``p_L, E(D), V(D)`` are known.

When the delay *distribution* is unknown, the procedure replaces every
``P(D > t)`` in the Section 4 procedure with its Cantelli bound
(Theorem 9), so the computed ``(η, δ)`` is guaranteed for **every**
distribution with the given mean and variance:

* Step 1: ``γ' = (1−p_L)·(T_D^U−E(D))² / (V(D) + (T_D^U−E(D))²)``;
  ``η_max = min(γ'·T_M^U, T_D^U − E(D))``.  ``η_max = 0`` means no
  detector can achieve the QoS (Theorem 10 case 2).
* Step 2: find the largest ``η ≤ η_max`` with ``f(η) ≥ T_MR^L`` where

  ``f(η) = η · Π_{j=1}^{⌈(T_D^U−E(D))/η⌉−1}
          [V + (T̃−jη)²] / [V + p_L·(T̃−jη)²]``,  ``T̃ = T_D^U − E(D)``.

* Step 3: ``δ = T_D^U − η``.

The paper's worked example (same requirements as Section 4's but only
``E(D) = V(D) = 0.02`` known) yields η ≈ 9.71, δ ≈ 20.29: slightly more
bandwidth than the known-distribution case buys the same QoS without
distributional knowledge.
"""

from __future__ import annotations

import math

from repro.analysis.configurator import NFDSConfig
from repro.analysis.search import largest_feasible_eta
from repro.errors import InvalidParameterError, QoSUnachievableError
from repro.metrics.qos import QoSRequirements

__all__ = ["configure_nfds_unknown"]


def configure_nfds_unknown(
    requirements: QoSRequirements,
    loss_probability: float,
    mean_delay: float,
    var_delay: float,
) -> NFDSConfig:
    """The Section 5 configuration procedure (distribution-free).

    Args:
        requirements: the QoS contract ``(T_D^U, T_MR^L, T_M^U)``; needs
            ``T_D^U > E(D)`` (a detector required to detect faster than the
            average message delay would be useless anyway).
        loss_probability: ``p_L``.
        mean_delay: ``E(D)``.
        var_delay: ``V(D)``.

    Raises:
        QoSUnachievableError: when ``η_max = 0`` (Theorem 10 case 2).
    """
    if not 0.0 <= loss_probability < 1.0:
        raise InvalidParameterError(
            f"loss_probability must be in [0,1), got {loss_probability}"
        )
    if mean_delay <= 0:
        raise InvalidParameterError(
            f"mean_delay must be positive, got {mean_delay}"
        )
    if var_delay < 0:
        raise InvalidParameterError(
            f"var_delay must be >= 0, got {var_delay}"
        )
    t_d_u = requirements.detection_time_upper
    if t_d_u <= mean_delay:
        raise InvalidParameterError(
            f"the procedure assumes T_D^U > E(D); got T_D^U={t_d_u}, "
            f"E(D)={mean_delay}"
        )
    t_mr_l = requirements.mistake_recurrence_lower
    t_m_u = requirements.mistake_duration_upper

    t_tilde = t_d_u - mean_delay  # T̃ = T_D^U − E(D)

    # Step 1
    gamma_prime = (
        (1.0 - loss_probability) * t_tilde**2 / (var_delay + t_tilde**2)
    )
    eta_max = min(gamma_prime * t_m_u, t_tilde)
    if eta_max == 0.0:
        raise QoSUnachievableError(
            "eta_max = 0: the requirements cannot be achieved by any "
            "failure detector in this system"
        )

    # Step 2
    def log_f(eta: float) -> float:
        n_terms = int(math.ceil(t_tilde / eta - 1e-12)) - 1
        log_prod = 0.0
        for j in range(1, n_terms + 1):
            gap = t_tilde - j * eta
            num = var_delay + gap * gap
            den = var_delay + loss_probability * gap * gap
            if den == 0.0:
                # V(D) = 0 and p_L = 0: deterministic, lossless network —
                # any eta below t_tilde gives perfect accuracy.
                return math.inf
            log_prod += math.log(num) - math.log(den)
        return math.log(eta) + log_prod

    eta = largest_feasible_eta(log_f, eta_max, t_mr_l)

    # Step 3
    delta = t_d_u - eta
    return NFDSConfig(
        eta=eta, delta=delta, eta_max=eta_max, requirements=requirements
    )
