"""Analytic QoS results and configuration procedures.

* :mod:`repro.analysis.nfds_theory` — Proposition 3 and Theorem 5: the
  exact QoS of NFD-S given ``(η, δ, p_L, D)``; also covers NFD-U via the
  substitution ``δ = E(D) + α``.
* :mod:`repro.analysis.chebyshev` — the one-sided (Cantelli) inequality
  and the distribution-free bounds of Theorems 9 and 11.
* :mod:`repro.analysis.configurator` — the Section 4 procedure (known
  probabilistic behaviour).
* :mod:`repro.analysis.configurator_unknown` — the Section 5 procedure
  (only ``p_L, E(D), V(D)`` known).
* :mod:`repro.analysis.configurator_nfdu` — the Section 6 procedure for
  NFD-U/NFD-E (unsynchronized clocks; only ``p_L, V(D)`` known).
* :mod:`repro.analysis.feasibility` — Proposition 8's bound on the
  largest ``η`` any NFD-S configuration could use.
"""

from repro.analysis.chebyshev import (
    nfdu_accuracy_bounds,
    nfds_accuracy_bounds,
    one_sided_tail_bound,
)
from repro.analysis.configurator import NFDSConfig, configure_nfds
from repro.analysis.configurator_nfdu import NFDUConfig, configure_nfdu
from repro.analysis.configurator_unknown import configure_nfds_unknown
from repro.analysis.feasibility import eta_upper_bound
from repro.analysis.nfde_theory import nfde_approximation
from repro.analysis.nfds_theory import NFDSAnalysis, QoSPrediction, nfdu_analysis
from repro.analysis.sfd_theory import SFDAnalysis, SFDPrediction

__all__ = [
    "NFDSAnalysis",
    "QoSPrediction",
    "nfdu_analysis",
    "one_sided_tail_bound",
    "nfds_accuracy_bounds",
    "nfdu_accuracy_bounds",
    "SFDAnalysis",
    "SFDPrediction",
    "nfde_approximation",
    "NFDSConfig",
    "configure_nfds",
    "configure_nfds_unknown",
    "NFDUConfig",
    "configure_nfdu",
    "eta_upper_bound",
]
