"""Distribution-free bounds (Section 5 / 6 of the paper).

When the delay distribution is unknown but ``E(D)`` and ``V(D)`` are,
the One-Sided Inequality (Cantelli's inequality, paper eq. 5.1)

    ``P(D > t) ≤ V(D) / (V(D) + (t − E(D))²)``   for ``t > E(D)``

bounds each ``p_j``/``q_0`` term of the NFD-S analysis, which yields
(Theorem 9, and Theorem 11 for NFD-U):

    ``E(T_MR) ≥ η / β``   and   ``E(T_M) ≤ η / γ``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InvalidParameterError

__all__ = [
    "one_sided_tail_bound",
    "AccuracyBounds",
    "nfds_accuracy_bounds",
    "nfdu_accuracy_bounds",
]


def one_sided_tail_bound(t: float, mean: float, variance: float) -> float:
    """Cantelli bound on ``P(D > t)``; trivially 1 for ``t ≤ mean``.

    Valid for *any* distribution with the given mean and (finite)
    variance — this is what lets the Section 5/6 configurators work
    without knowing the delay law.
    """
    if variance < 0:
        raise InvalidParameterError(f"variance must be >= 0, got {variance}")
    if t <= mean:
        return 1.0
    gap = t - mean
    return variance / (variance + gap * gap)


@dataclass(frozen=True)
class AccuracyBounds:
    """Theorem 9 / 11 bounds on the primary accuracy metrics."""

    e_tmr_lower: float  # η / β
    e_tm_upper: float  # η / γ
    beta: float
    gamma: float


def nfds_accuracy_bounds(
    eta: float,
    delta: float,
    loss_probability: float,
    mean_delay: float,
    var_delay: float,
) -> AccuracyBounds:
    """Theorem 9: bounds for NFD-S when only ``p_L, E(D), V(D)`` are known.

    Requires ``δ > E(D)`` (otherwise NFD-S would false-suspect on every
    above-average delay — the paper argues such configurations are not
    useful detectors).

    ``β = Π_{j=0}^{k₀} [V + p_L·(δ−E(D)−jη)²] / [V + (δ−E(D)−jη)²]``
    with ``k₀ = ⌈(δ−E(D))/η⌉ − 1``, and
    ``γ = (1−p_L)·(δ−E(D)+η)² / [V + (δ−E(D)+η)²]``.
    """
    if eta <= 0:
        raise InvalidParameterError(f"eta must be positive, got {eta}")
    if not 0.0 <= loss_probability < 1.0:
        raise InvalidParameterError(
            f"loss_probability must be in [0,1), got {loss_probability}"
        )
    if var_delay < 0:
        raise InvalidParameterError(f"variance must be >= 0, got {var_delay}")
    if delta <= mean_delay:
        raise InvalidParameterError(
            f"Theorem 9 needs delta > E(D); got delta={delta}, E(D)={mean_delay}"
        )
    return _bounds_from_effective_shift(
        eta=eta,
        shift=delta - mean_delay,
        p_l=loss_probability,
        variance=var_delay,
    )


def nfdu_accuracy_bounds(
    eta: float,
    alpha: float,
    loss_probability: float,
    var_delay: float,
) -> AccuracyBounds:
    """Theorem 11: bounds for NFD-U — note ``E(D)`` is *not* needed.

    Requires ``α > 0``; identical to Theorem 9 with the effective shift
    ``δ − E(D)`` replaced by ``α``.
    """
    if alpha <= 0:
        raise InvalidParameterError(f"Theorem 11 needs alpha > 0, got {alpha}")
    if eta <= 0:
        raise InvalidParameterError(f"eta must be positive, got {eta}")
    if not 0.0 <= loss_probability < 1.0:
        raise InvalidParameterError(
            f"loss_probability must be in [0,1), got {loss_probability}"
        )
    if var_delay < 0:
        raise InvalidParameterError(f"variance must be >= 0, got {var_delay}")
    return _bounds_from_effective_shift(
        eta=eta, shift=alpha, p_l=loss_probability, variance=var_delay
    )


def _bounds_from_effective_shift(
    eta: float, shift: float, p_l: float, variance: float
) -> AccuracyBounds:
    k0 = int(math.ceil(shift / eta - 1e-12)) - 1
    log_beta = 0.0
    for j in range(k0 + 1):
        gap = shift - j * eta
        num = variance + p_l * gap * gap
        den = variance + gap * gap
        if num == 0.0:
            # variance 0, p_L 0, gap > 0: deterministic delays, no loss —
            # a mistake can never recur; β = 0 means E(T_MR) = ∞.
            return AccuracyBounds(
                e_tmr_lower=math.inf,
                e_tm_upper=_gamma_bound(eta, shift, p_l, variance)[0],
                beta=0.0,
                gamma=_gamma_bound(eta, shift, p_l, variance)[1],
            )
        log_beta += math.log(num) - math.log(den)
    beta = math.exp(log_beta)
    e_tm_upper, gamma = _gamma_bound(eta, shift, p_l, variance)
    return AccuracyBounds(
        e_tmr_lower=eta / beta if beta > 0 else math.inf,
        e_tm_upper=e_tm_upper,
        beta=beta,
        gamma=gamma,
    )


def _gamma_bound(
    eta: float, shift: float, p_l: float, variance: float
) -> tuple:
    reach = shift + eta
    gamma = (1.0 - p_l) * reach * reach / (variance + reach * reach)
    e_tm_upper = eta / gamma if gamma > 0 else math.inf
    return e_tm_upper, gamma
