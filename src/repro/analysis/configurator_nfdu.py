"""Section 6: configuring NFD-U / NFD-E (unsynchronized clocks).

Without synchronized clocks the absolute detection bound becomes relative
to the (unknown) average delay: the contract is

    ``T_D ≤ T_D^u + E(D)``,  ``E(T_MR) ≥ T_MR^L``,  ``E(T_M) ≤ T_M^U``

(paper eq. 6.1) — no nontrivial detector using one-way messages can
enforce an *absolute* bound when clocks are unsynchronized.  The
procedure mirrors Section 5's with the effective shift ``T_D^u``
replacing ``T_D^U − E(D)``; remarkably, ``E(D)`` itself is never needed
(Theorem 11 uses only ``p_L`` and ``V(D)``):

* Step 1: ``γ' = (1−p_L)·(T_D^u)² / (V(D) + (T_D^u)²)``;
  ``η_max = min(γ'·T_M^U, T_D^u)``.
* Step 2: largest ``η ≤ η_max`` with
  ``f(η) = η·Π_{j=1}^{⌈T_D^u/η⌉−1} [V+(T_D^u−jη)²]/[V+p_L(T_D^u−jη)²]
  ≥ T_MR^L``.
* Step 3: ``α = T_D^u − η``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.search import largest_feasible_eta
from repro.errors import InvalidParameterError, QoSUnachievableError
from repro.metrics.qos import QoSRequirements

__all__ = ["NFDUConfig", "configure_nfdu"]


@dataclass(frozen=True)
class NFDUConfig:
    """Output of the Section 6 configuration procedure."""

    eta: float
    alpha: float
    eta_max: float
    relative_detection_bound: float  # T_D^u; actual bound is T_D^u + E(D)
    requirements: QoSRequirements


def configure_nfdu(
    relative_detection_bound: float,
    mistake_recurrence_lower: float,
    mistake_duration_upper: float,
    loss_probability: float,
    var_delay: float,
) -> NFDUConfig:
    """The Section 6 configuration procedure for NFD-U/NFD-E.

    Args:
        relative_detection_bound: ``T_D^u`` — the detection bound *minus*
            the unknown average delay; the achieved guarantee is
            ``T_D ≤ T_D^u + E(D)``.
        mistake_recurrence_lower: ``T_MR^L``.
        mistake_duration_upper: ``T_M^U``.
        loss_probability: ``p_L``.
        var_delay: ``V(D)`` — note ``E(D)`` is *not* required.

    Raises:
        QoSUnachievableError: when ``η_max = 0`` (Theorem 12 case 2).
    """
    if relative_detection_bound <= 0:
        raise InvalidParameterError(
            f"T_D^u must be positive, got {relative_detection_bound}"
        )
    if not 0.0 <= loss_probability < 1.0:
        raise InvalidParameterError(
            f"loss_probability must be in [0,1), got {loss_probability}"
        )
    if var_delay < 0:
        raise InvalidParameterError(f"var_delay must be >= 0, got {var_delay}")
    t_d_u = float(relative_detection_bound)
    t_mr_l = float(mistake_recurrence_lower)
    t_m_u = float(mistake_duration_upper)
    if t_mr_l <= 0 or t_m_u <= 0:
        raise InvalidParameterError("T_MR^L and T_M^U must be positive")

    # Step 1
    gamma_prime = (1.0 - loss_probability) * t_d_u**2 / (var_delay + t_d_u**2)
    eta_max = min(gamma_prime * t_m_u, t_d_u)
    if eta_max == 0.0:
        raise QoSUnachievableError(
            "eta_max = 0: the requirements cannot be achieved by any "
            "failure detector in this system"
        )

    # Step 2
    def log_f(eta: float) -> float:
        n_terms = int(math.ceil(t_d_u / eta - 1e-12)) - 1
        log_prod = 0.0
        for j in range(1, n_terms + 1):
            gap = t_d_u - j * eta
            num = var_delay + gap * gap
            den = var_delay + loss_probability * gap * gap
            if den == 0.0:
                return math.inf
            log_prod += math.log(num) - math.log(den)
        return math.log(eta) + log_prod

    eta = largest_feasible_eta(log_f, eta_max, t_mr_l)

    # Step 3
    alpha = t_d_u - eta
    # The requirements tuple records the *relative* contract; detection
    # bound stored as T_D^u (callers add E(D) when it becomes known).
    requirements = QoSRequirements(
        detection_time_upper=t_d_u,
        mistake_recurrence_lower=t_mr_l,
        mistake_duration_upper=t_m_u,
    )
    return NFDUConfig(
        eta=eta,
        alpha=alpha,
        eta_max=eta_max,
        relative_detection_bound=t_d_u,
        requirements=requirements,
    )
