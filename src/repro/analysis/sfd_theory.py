"""Analytic QoS of the common algorithm (SFD) with a cutoff — extension.

The paper analyzes NFD exactly (Theorem 5) but only *simulates* the
common algorithm.  Its structure admits the same treatment, which this
module provides (labelled an extension: these formulas are ours, not
the paper's; they are validated against the simulators in the tests).

Model.  Heartbeats are sent every η; each is *accepted* independently
with probability ``a = (1 − p_L)·P(D ≤ c)`` (it must survive the link
and beat the cutoff), and an accepted message's delay follows the
truncated law ``G = law(D | D ≤ c)``.  With ``c < η``, accepted
arrivals keep their send order, so the inter-receipt gaps are

    ``gap_K = K·η + (d' − d)``,  ``K ~ Geometric(a)``, ``d, d' ~ G`` iid,

where ``K − 1`` is the number of rejected heartbeats between two
accepted ones.  The timeout TO is restarted at each accepted receipt,
so an S-transition occurs in a gap iff ``gap > TO``, with mistake
duration ``gap − TO``.  Hence, per accepted receipt:

    ``P(mistake) = Σ_K a(1−a)^{K−1} · P(W > TO − K·η)``,  ``W = d' − d``,

and with accepted receipts arriving at rate ``a/η``:

    ``E(T_MR) = η / (a · P(mistake-per-gap))``
    ``E(T_M)  = E[(gap − TO)⁺] / P(gap > TO)``
    ``P_A     = 1 − E(T_M)/E(T_MR)``          (Theorem 1.2).

``W``'s law is computed by numerical convolution on a grid of the
truncated delay CDF, so any :class:`DelayDistribution` works.

This also exposes *why* the cutoff trade-off is inherently bad (the
paper's Section 7.2 argument, now quantitative): raising c grows the
acceptance probability a (fewer long gaps) but shifts probability mass
of W toward ``+c`` (premature timeouts when a fast heartbeat precedes a
slow one — the Section 1.2.1 dependency on the *previous* heartbeat,
visible in the formula through ``d`` entering with a minus sign).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import InvalidParameterError
from repro.net.delays import DelayDistribution

__all__ = ["SFDPrediction", "SFDAnalysis"]


@dataclass(frozen=True)
class SFDPrediction:
    """Analytic QoS of one cutoff-SFD configuration."""

    detection_time_bound: float
    e_tmr: float
    e_tm: float
    query_accuracy: float
    mistake_rate: float
    acceptance_probability: float


class SFDAnalysis:
    """Renewal analysis of SFD(TO, cutoff) on a lossy link.

    Args:
        eta: heartbeat inter-sending time.
        timeout: the fixed timeout TO.
        loss_probability: ``p_L``.
        delay: the delay distribution D.
        cutoff: the discard threshold c; None analyses the plain common
            algorithm by truncating D at a negligible tail quantile
            (``P(D > c_eff) < 1e-12``).
        grid: resolution of the numerical convolution for W = d' − d.

    Requires ``c < η`` (no receipt reordering among accepted messages) —
    satisfied by the paper's cutoffs (0.08, 0.16 at η = 1) and by any
    sane deployment.
    """

    def __init__(
        self,
        eta: float,
        timeout: float,
        loss_probability: float,
        delay: DelayDistribution,
        cutoff: Optional[float] = None,
        grid: int = 1024,
    ) -> None:
        if eta <= 0 or timeout <= 0:
            raise InvalidParameterError("eta and timeout must be positive")
        if not 0.0 <= loss_probability < 1.0:
            raise InvalidParameterError(
                f"loss_probability must be in [0,1), got {loss_probability}"
            )
        if grid < 16:
            raise InvalidParameterError(f"grid must be >= 16, got {grid}")
        self.eta = float(eta)
        self.timeout = float(timeout)
        self.p_l = float(loss_probability)
        self.delay = delay
        self._explicit_cutoff = cutoff
        self.cutoff = self._effective_cutoff(cutoff)
        if self.cutoff >= eta:
            raise InvalidParameterError(
                f"analysis requires cutoff < eta (no reordering); got "
                f"cutoff={self.cutoff}, eta={eta}"
            )
        self._grid = int(grid)
        self._mass, self._mid = self._truncated_grid()

    def _effective_cutoff(self, cutoff: Optional[float]) -> float:
        if cutoff is not None:
            if cutoff <= 0:
                raise InvalidParameterError("cutoff must be positive")
            return float(cutoff)
        # Plain SFD: truncate at a negligible tail.
        c = max(self.delay.mean, 1e-9)
        for _ in range(200):
            if float(self.delay.sf(c)) < 1e-12:
                return c
            c *= 1.5
        raise InvalidParameterError(
            "delay tail too heavy to truncate for the plain-SFD analysis; "
            "pass an explicit cutoff"
        )

    def _truncated_grid(self):
        """Probability masses of the truncated delay law on grid cells."""
        edges = np.linspace(0.0, self.cutoff, self._grid + 1)
        cdf = np.asarray(self.delay.cdf(edges))
        mass = np.diff(cdf)
        total = cdf[-1] - cdf[0]
        if total <= 0:
            raise InvalidParameterError(
                "P(D <= cutoff) = 0: no heartbeat is ever accepted"
            )
        mass = mass / total
        mid = 0.5 * (edges[:-1] + edges[1:])
        return mass, mid

    # ------------------------------------------------------------------ #
    # Core quantities
    # ------------------------------------------------------------------ #

    @property
    def acceptance_probability(self) -> float:
        """``a = (1 − p_L)·P(D ≤ c)``."""
        return (1.0 - self.p_l) * float(self.delay.cdf(self.cutoff))

    @property
    def detection_time_bound(self) -> float:
        """``T_D ≤ c + TO`` (Section 7.2)."""
        bound_cutoff = (
            self._explicit_cutoff
            if self._explicit_cutoff is not None
            else math.inf
        )
        return bound_cutoff + self.timeout

    def _w_tail_and_excess(self, x: float):
        """``P(W > x)`` and ``E[(W − x)⁺]`` for ``W = d' − d``."""
        # W > x  <=>  d' > x + d ; vectorized over the (d, d') grid.
        d = self._mid[:, None]
        dp = self._mid[None, :]
        w = dp - d
        joint = self._mass[:, None] * self._mass[None, :]
        tail = float(joint[w > x].sum())
        excess = float((joint * np.clip(w - x, 0.0, None)).sum())
        return tail, excess

    def _per_gap_statistics(self):
        """Σ over K of the geometric-weighted premature-gap quantities."""
        a = self.acceptance_probability
        if a <= 0.0:
            return 0.0, 0.0
        p_mistake = 0.0  # P(gap > TO) per gap
        e_excess = 0.0  # E[(gap − TO)^+] per gap
        k = 1
        weight = a
        while True:
            x = self.timeout - k * self.eta
            if x <= -self.cutoff:
                # gap > TO with certainty for this and all larger K; the
                # remaining geometric tail contributes in closed form.
                # P: Σ_{j>=k} a(1−a)^{j−1} = (1−a)^{k−1}
                rem_p = (1.0 - a) ** (k - 1)
                p_mistake += rem_p
                # E[(jη + W − TO)] summed with geometric weights:
                # Σ_{j>=k} a(1−a)^{j−1}(jη − TO + E W); E W = 0.
                # Σ j a(1−a)^{j−1} over j>=k = (1−a)^{k−1}(k + (1−a)/a)
                e_excess += self.eta * (1.0 - a) ** (k - 1) * (
                    k + (1.0 - a) / a
                ) - self.timeout * rem_p
                break
            tail, excess = self._w_tail_and_excess(x)
            p_mistake += weight * tail
            e_excess += weight * excess
            weight *= 1.0 - a
            k += 1
            if weight < 1e-18 and self.timeout - k * self.eta < -self.cutoff:
                break
            if k > 10_000:  # pragma: no cover - defensive
                break
        return p_mistake, e_excess

    # ------------------------------------------------------------------ #
    # QoS metrics
    # ------------------------------------------------------------------ #

    def e_tmr(self) -> float:
        """``E(T_MR) = η / (a · P(gap > TO))``."""
        a = self.acceptance_probability
        p_mistake, _ = self._per_gap_statistics()
        if a <= 0.0 or p_mistake <= 0.0:
            return math.inf
        return self.eta / (a * p_mistake)

    def e_tm(self) -> float:
        """``E(T_M) = E[(gap − TO)⁺] / P(gap > TO)``."""
        p_mistake, e_excess = self._per_gap_statistics()
        if p_mistake <= 0.0:
            return 0.0
        return e_excess / p_mistake

    def query_accuracy(self) -> float:
        e_tmr = self.e_tmr()
        if math.isinf(e_tmr):
            return 1.0
        return 1.0 - self.e_tm() / e_tmr

    def predict(self) -> SFDPrediction:
        e_tmr = self.e_tmr()
        return SFDPrediction(
            detection_time_bound=self.detection_time_bound,
            e_tmr=e_tmr,
            e_tm=self.e_tm(),
            query_accuracy=self.query_accuracy(),
            mistake_rate=0.0 if math.isinf(e_tmr) else 1.0 / e_tmr,
            acceptance_probability=self.acceptance_probability,
        )
