"""Exact QoS analysis of NFD-S (Proposition 3 and Theorem 5).

Given the algorithm parameters ``(η, δ)`` and the network behaviour
``(p_L, D)``, the paper derives in closed form:

* ``k = ⌈δ/η⌉`` — the number of heartbeats beyond ``m_i`` that can still
  be "fresh" for window ``i``;
* ``p_j(x) = p_L + (1−p_L)·P(D > δ + x − jη)`` — probability that
  ``m_{i+j}`` has *not* been received by time ``τ_i + x``;
* ``q_0 = (1−p_L)·P(D < δ + η)`` — probability that ``m_{i-1}`` arrives
  before ``τ_i``;
* ``u(x) = Π_{j=0}^{k} p_j(x)`` — probability that q suspects p at
  ``τ_i + x``, for ``x ∈ [0, η)``;
* ``p_s = q_0 · u(0)`` — probability that an S-transition occurs at a
  given freshness point;

and then (Theorem 5):

* ``T_D ≤ δ + η`` (tight, deterministic);
* ``E(T_MR) = η / p_s``;
* ``E(T_M) = ∫₀^η u(x) dx / p_s``;
* hence ``P_A = 1 − (1/η)·∫₀^η u(x) dx`` (Lemma 15).

NFD-U with slack ``α`` has the same QoS with ``δ := E(D) + α``
(Section 6.2), provided by :func:`nfdu_analysis`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np
from scipy import integrate

from repro.errors import InvalidParameterError
from repro.metrics.relations import forward_good_period_mean
from repro.net.delays import DelayDistribution

__all__ = ["QoSPrediction", "NFDSAnalysis", "nfdu_analysis"]

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class QoSPrediction:
    """The full analytic QoS of an NFD configuration.

    ``e_tmr`` and ``e_tm`` are the primary accuracy metrics of Theorem 5;
    the remaining fields follow via Theorem 1.  ``e_tfg`` is reported as
    the lower bound ``E(T_G)/2`` because Theorem 5 does not provide
    ``V(T_G)`` in closed form (the empirical estimators do).
    """

    detection_time_bound: float
    e_tmr: float
    e_tm: float
    query_accuracy: float
    mistake_rate: float
    e_tg: float
    e_tfg_lower: float
    p_s: float
    q_0: float
    u_0: float
    k: int


class NFDSAnalysis:
    """Proposition 3 / Theorem 5 evaluator for one NFD-S configuration.

    Args:
        eta: heartbeat inter-sending time η.
        delta: freshness shift δ.
        loss_probability: message loss probability p_L.
        delay: delay distribution D.

    The degenerate cases called out by the paper are represented exactly:
    if ``p_0 = 0`` (a fresh message always arrives in time) then
    ``E(T_MR) = ∞`` and ``E(T_M) = 0``; if ``q_0 = 0`` (no message ever
    arrives within ``δ + η``) then q suspects forever: ``P_A = 0``.
    """

    def __init__(
        self,
        eta: float,
        delta: float,
        loss_probability: float,
        delay: DelayDistribution,
    ) -> None:
        if eta <= 0:
            raise InvalidParameterError(f"eta must be positive, got {eta}")
        if delta < 0:
            raise InvalidParameterError(f"delta must be >= 0, got {delta}")
        if not 0.0 <= loss_probability <= 1.0:
            raise InvalidParameterError(
                f"loss_probability must be in [0,1], got {loss_probability}"
            )
        self.eta = float(eta)
        self.delta = float(delta)
        self.p_l = float(loss_probability)
        self.delay = delay
        # Per-configuration memo of the expensive evaluations (adaptive
        # quadrature, CDF products).  The parameters above are fixed for
        # the lifetime of the instance, so each value is computed at most
        # once however many times predict()/e_tm()/query_accuracy() ask.
        self._memo: dict = {}

    # ------------------------------------------------------------------ #
    # Proposition 3
    # ------------------------------------------------------------------ #

    @property
    def k(self) -> int:
        """``k = ⌈δ/η⌉`` (Proposition 3.1)."""
        return int(math.ceil(self.delta / self.eta - 1e-12))

    def p_j(self, j: int, x: ArrayLike = 0.0) -> ArrayLike:
        """``p_j(x) = p_L + (1−p_L)·P(D > δ + x − j·η)`` (Prop. 3.2)."""
        if j < 0:
            raise InvalidParameterError(f"j must be >= 0, got {j}")
        t = self.delta + np.asarray(x, dtype=float) - j * self.eta
        out = self.p_l + (1.0 - self.p_l) * np.asarray(self.delay.sf(t))
        return float(out) if np.ndim(x) == 0 else out

    @property
    def p_0(self) -> float:
        """``p_0 = p_0(0)`` — P(m_i not received by τ_i)."""
        return float(self.p_j(0, 0.0))

    @property
    def q_0(self) -> float:
        """``q_0 = (1−p_L)·P(D < δ + η)`` (Prop. 3.3)."""
        if "q_0" not in self._memo:
            self._memo["q_0"] = (1.0 - self.p_l) * float(
                self.delay.prob_less(self.delta + self.eta)
            )
        return self._memo["q_0"]

    def u(self, x: ArrayLike) -> ArrayLike:
        """``u(x) = Π_{j=0}^{k} p_j(x)`` for ``x ∈ [0, η)`` (Prop. 3.4).

        Evaluated by broadcasting over ``j``: one CDF call on a
        ``x.shape + (k+1,)`` grid and a product along the last axis,
        instead of ``k+1`` separate passes over ``x``.
        """
        xa = np.asarray(x, dtype=float)
        t = self.delta + xa[..., None] - np.arange(self.k + 1) * self.eta
        factors = self.p_l + (1.0 - self.p_l) * np.asarray(
            self.delay.sf(t), dtype=float
        )
        out = np.multiply.reduce(factors, axis=-1)
        return float(out) if np.ndim(x) == 0 else out

    @property
    def u_0(self) -> float:
        """``u(0)`` — the suspicion probability at a freshness point."""
        if "u_0" not in self._memo:
            self._memo["u_0"] = float(self.u(0.0))
        return self._memo["u_0"]

    @property
    def p_s(self) -> float:
        """``p_s = q_0 · u(0)`` (Prop. 3.5)."""
        return self.q_0 * self.u_0

    # ------------------------------------------------------------------ #
    # Theorem 5
    # ------------------------------------------------------------------ #

    @property
    def detection_time_bound(self) -> float:
        """``T_D ≤ δ + η``, and the bound is tight (Theorem 5.1)."""
        return self.delta + self.eta

    def expected_detection_time(self) -> float:
        """Approximate ``E(T_D)`` over a uniformly random crash phase.

        The paper only bounds ``T_D``; its expectation follows from the
        Lemma 18 argument: a crash at ``t ∈ (σ_i, σ_{i+1}]`` is detected
        permanently at ``τ_{i+1} = σ_i + δ + η`` in every run where q
        trusts p at some point in ``[t, τ_{i+1})``, giving
        ``T_D = τ_{i+1} − t`` ~ Uniform[δ, δ+η) and hence
        ``E(T_D) ≈ δ + η/2``.  Runs where q never trusts in that window
        (probability ≈ u(0), astronomically small for any configuration
        worth deploying) detect strictly earlier, so this is a tight
        upper approximation.
        """
        return self.delta + self.eta / 2.0

    def integral_u(self) -> float:
        """``∫₀^η u(x) dx`` by adaptive quadrature.

        The integrand has kinks wherever ``δ + x − jη`` crosses a
        non-smooth point of the delay CDF; those x are passed to ``quad``
        as mandatory split points.  The value is memoized: the paper's
        predictions need it in both ``E(T_M)`` and ``P_A``, and sweep
        tables re-query the same configuration repeatedly.
        """
        if "integral_u" in self._memo:
            return self._memo["integral_u"]
        pts = []
        for kink in self.delay.kinks():
            for j in range(self.k + 1):
                x = kink - self.delta + j * self.eta
                if 0.0 < x < self.eta:
                    pts.append(x)
        value, _err = integrate.quad(
            lambda x: float(self.u(x)),
            0.0,
            self.eta,
            points=sorted(set(pts)) or None,
            limit=200,
        )
        self._memo["integral_u"] = float(value)
        return self._memo["integral_u"]

    def e_tmr(self) -> float:
        """``E(T_MR) = η / p_s`` (Theorem 5.2); ``inf`` if ``p_s = 0``."""
        p_s = self.p_s
        if p_s == 0.0:
            return math.inf
        return self.eta / p_s

    def e_tm(self) -> float:
        """``E(T_M) = ∫₀^η u(x)dx / p_s`` (Theorem 5.3).

        In the degenerate case ``p_0 = 0`` no mistakes happen and the
        mistake duration is 0 by convention; if ``q_0 = 0`` q suspects
        forever and ``E(T_M) = ∞``.
        """
        if self.p_0 == 0.0:
            return 0.0
        if self.q_0 == 0.0:
            return math.inf
        p_s = self.p_s
        if p_s == 0.0:
            # u(0) underflowed (mistakes rarer than ~1e-300 per window):
            # the ratio ∫u/p_s is still finite; report the Proposition 21
            # upper bound E(T_M) <= η/q_0, which is tight in this regime
            # (u(x)/u(0) ≈ 1 over the window when u is this small).
            return self.eta / self.q_0
        return self.integral_u() / p_s

    def query_accuracy(self) -> float:
        """``P_A = 1 − (1/η)·∫₀^η u(x) dx`` (Lemma 15)."""
        return 1.0 - self.integral_u() / self.eta

    def predict(self) -> QoSPrediction:
        """Evaluate the full analytic QoS of this configuration."""
        e_tmr = self.e_tmr()
        e_tm = self.e_tm()
        p_a = self.query_accuracy()
        if math.isinf(e_tmr):
            e_tg = math.inf
            rate = 0.0
        else:
            # E(T_M) <= E(T_MR) holds mathematically (each mistake lies
            # inside its recurrence interval); clamp the tiny negative
            # values quadrature error can produce when the two coincide.
            e_tg = max(e_tmr - e_tm, 0.0)
            rate = 1.0 / e_tmr
        return QoSPrediction(
            detection_time_bound=self.detection_time_bound,
            e_tmr=e_tmr,
            e_tm=e_tm,
            query_accuracy=p_a,
            mistake_rate=rate,
            e_tg=e_tg,
            e_tfg_lower=(
                math.inf
                if math.isinf(e_tg)
                else forward_good_period_mean(e_tg, 0.0)
            ),
            p_s=self.p_s,
            q_0=self.q_0,
            u_0=self.u_0,
            k=self.k,
        )


def nfdu_analysis(
    eta: float,
    alpha: float,
    loss_probability: float,
    delay: DelayDistribution,
) -> NFDSAnalysis:
    """QoS of NFD-U: substitute ``δ = E(D) + α`` into the NFD-S analysis.

    Section 6.2: NFD-U's freshness points are ``τ_i = EA_i + α =
    σ_i + E(D) + α``, i.e. exactly NFD-S's with ``δ = E(D) + α``.  The
    effective shift must be nonnegative for the analysis to apply.
    """
    delta = delay.mean + alpha
    if delta < 0:
        raise InvalidParameterError(
            f"effective shift E(D)+alpha = {delta} must be >= 0"
        )
    return NFDSAnalysis(
        eta=eta, delta=delta, loss_probability=loss_probability, delay=delay
    )
