"""Consumer-level QoS metrics for the election layer.

Reis & Vieira score a leader-election service by how it *consumes* the
failure detector's QoS: how long an elected correct leader survives
before a detector mistake demotes it, how quickly a real leader crash
is repaired, and how often leadership churns for no reason.  This
module computes those metrics from a leader timeline
(:class:`~repro.election.omega.LeaderEvent` sequences) against a
crash/recovery **ground truth**:

* **leader stability** — mean time between demotions of a *correct*
  (up) leader, the election-layer analogue of ``E(T_MR)``;
* **election latency** — for each crash of the elected leader, the time
  until a correct leader is installed again, the analogue of ``T_D``
  (plus dissemination, zero for an in-process elector);
* **spurious-demotion rate** — demotions of up leaders per unit time,
  the analogue of ``λ_M``.

Observation can be restricted to the instants an *observer* process was
itself up: a crashed monitor's opinions are meaningless while it is
down, exactly as a crashed process's detector output is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.election.omega import LeaderEvent

__all__ = [
    "GroundTruth",
    "ElectionQoS",
    "leader_at",
    "score_election",
    "cluster_agreement_time",
]


class GroundTruth:
    """Real crash/recovery instants of a set of identities.

    All names are up from ``start``.  A crash at ``c`` makes the
    process down on ``[c, r)`` where ``r`` is the matching recovery
    (down forever if none) — the same right-continuous convention as
    ``MonitoredProcess.crashed_by``.
    """

    def __init__(self, names: Iterable[str], start: float = 0.0) -> None:
        self._start = float(start)
        self._crashes: Dict[str, List[float]] = {n: [] for n in names}
        self._recoveries: Dict[str, List[float]] = {n: [] for n in names}
        self._events: List[Tuple[float, str, str]] = []

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._crashes))

    @property
    def start(self) -> float:
        return self._start

    @property
    def events(self) -> Tuple[Tuple[float, str, str], ...]:
        """All ``(time, name, "crash"|"recover")`` events, time order."""
        return tuple(sorted(self._events))

    @property
    def crash_events(self) -> Tuple[Tuple[float, str], ...]:
        return tuple(
            (t, n) for t, n, kind in self.events if kind == "crash"
        )

    @property
    def last_event_time(self) -> float:
        """Time of the last crash/recovery (``start`` if none)."""
        return max((t for t, _, _ in self._events), default=self._start)

    def _series(self, name: str) -> Tuple[List[float], List[float]]:
        try:
            return self._crashes[name], self._recoveries[name]
        except KeyError:
            raise InvalidParameterError(f"unknown process {name!r}") from None

    def crash(self, name: str, time: float) -> None:
        crashes, recoveries = self._series(name)
        if len(crashes) > len(recoveries):
            raise InvalidParameterError(f"{name!r} is already down")
        if crashes and time < recoveries[-1]:
            raise InvalidParameterError(
                f"crash at {time} before recovery at {recoveries[-1]}"
            )
        crashes.append(float(time))
        self._events.append((float(time), name, "crash"))

    def recover(self, name: str, time: float) -> None:
        crashes, recoveries = self._series(name)
        if len(crashes) == len(recoveries):
            raise InvalidParameterError(f"{name!r} is not down")
        if time < crashes[-1]:
            raise InvalidParameterError(
                f"recovery at {time} before crash at {crashes[-1]}"
            )
        recoveries.append(float(time))
        self._events.append((float(time), name, "recover"))

    def up(self, name: str, time: float) -> bool:
        """Whether ``name`` is up at ``time`` (down at the crash
        instant, up again at the recovery instant)."""
        crashes, recoveries = self._series(name)
        if time < self._start:
            return False
        i = np.searchsorted(np.asarray(crashes), time, side="right")
        j = np.searchsorted(np.asarray(recoveries), time, side="right")
        # Up iff every crash at/before `time` has a recovery at/before it.
        return int(i) == int(j)

    def up_set(self, time: float) -> frozenset:
        return frozenset(n for n in self._crashes if self.up(n, time))

    def up_intervals(
        self, name: str, lo: float, hi: float
    ) -> List[Tuple[float, float]]:
        """Maximal intervals within ``[lo, hi]`` during which ``name``
        is up."""
        crashes, recoveries = self._series(name)
        out: List[Tuple[float, float]] = []
        cur = self._start
        for k, c in enumerate(crashes):
            if c > cur:
                out.append((cur, c))
            cur = recoveries[k] if k < len(recoveries) else math.inf
        if cur < math.inf:
            out.append((cur, math.inf))
        clipped = [
            (max(a, lo), min(b, hi)) for a, b in out if b > lo and a < hi
        ]
        return [(a, b) for a, b in clipped if b > a]

    def first_up(self, name: str, lo: float, hi: float) -> Optional[float]:
        """Earliest instant in ``[lo, hi)`` at which ``name`` is up."""
        for a, b in self.up_intervals(name, lo, hi):
            return a
        return None

    def up_time(self, name: str, lo: float, hi: float) -> float:
        return sum(b - a for a, b in self.up_intervals(name, lo, hi))


def leader_at(
    events: Sequence[LeaderEvent],
    time: float,
    initial: Optional[str] = None,
) -> Optional[str]:
    """The elected leader at ``time`` (right-continuous, like the
    detector output convention)."""
    leader = initial
    for ev in events:
        if ev.time > time:
            break
        leader = ev.leader
    return leader


@dataclass
class ElectionQoS:
    """Consumer-level QoS of one elector over an observation window."""

    observation_time: float
    n_demotions: int
    n_spurious_demotions: int
    #: mean time between spurious demotions (NaN when none happened).
    leader_stability: float
    #: spurious demotions per unit of observed time.
    spurious_demotion_rate: float
    #: per-leader-crash repair times (``inf`` = never repaired in window).
    latencies: np.ndarray = field(repr=False)
    #: fraction of observed time a correct (up) leader was installed.
    correct_leader_fraction: float

    @property
    def mean_latency(self) -> float:
        finite = self.latencies[np.isfinite(self.latencies)]
        return float(finite.mean()) if finite.size else math.nan

    @property
    def max_latency(self) -> float:
        return float(self.latencies.max()) if self.latencies.size else math.nan

    @property
    def n_leader_crashes(self) -> int:
        return int(self.latencies.size)


def _segments(
    events: Sequence[LeaderEvent],
    start: float,
    end: float,
    initial: Optional[str],
) -> List[Tuple[float, float, Optional[str]]]:
    """Piecewise-constant leader over ``[start, end]`` as
    ``(seg_start, seg_end, leader)`` pieces."""
    leader = initial
    t = start
    out: List[Tuple[float, float, Optional[str]]] = []
    for ev in events:
        if ev.time <= start:
            leader = ev.leader
            continue
        if ev.time > end:
            break
        if ev.time > t:
            out.append((t, ev.time, leader))
        leader = ev.leader
        t = ev.time
    if end > t:
        out.append((t, end, leader))
    return out


def score_election(
    events: Sequence[LeaderEvent],
    truth: GroundTruth,
    *,
    start: float,
    end: float,
    initial: Optional[str] = None,
    observer: Optional[str] = None,
) -> ElectionQoS:
    """Score one elector's leader timeline over ``[start, end]``.

    Args:
        events: the elector's leader timeline.
        truth: real crash/recovery instants.
        initial: the leader before the first event (an elector running
            *on* a candidate elects itself at birth).
        observer: when the elector runs on one of the candidate
            processes, its name: observation (and every per-event
            classification) is masked to the instants the observer was
            itself up — a crashed monitor's opinions don't count.
    """
    if end <= start:
        raise InvalidParameterError(f"need end > start, got [{start}, {end}]")
    observation = (
        end - start
        if observer is None
        else truth.up_time(observer, start, end)
    )

    n_demotions = n_spurious = 0
    for ev in events:
        if not (start < ev.time <= end) or not ev.is_demotion:
            continue
        if observer is not None and not truth.up(observer, ev.time):
            continue
        n_demotions += 1
        if truth.up(ev.previous, ev.time):
            n_spurious += 1

    # Election latency per crash of the then-elected leader.
    latencies: List[float] = []
    segments = _segments(events, start, end, initial)
    for c, name in truth.crash_events:
        if not (start <= c < end):
            continue
        if observer is not None and not truth.up(observer, c):
            continue
        # Was `name` the elected leader just before its crash?
        before = initial
        for ev in events:
            if ev.time >= c:
                break
            before = ev.leader
        if before != name:
            continue
        # First instant >= c at which an up leader is installed.
        repaired = math.inf
        for lo, hi, leader in segments:
            if hi <= c:
                continue
            if leader is None:
                continue
            t = truth.first_up(leader, max(lo, c), hi)
            if t is not None:
                repaired = t - c
                break
        latencies.append(repaired)

    # Fraction of (masked) observation with a correct leader installed.
    correct = 0.0
    for lo, hi, leader in segments:
        if leader is None:
            continue
        for a, b in truth.up_intervals(leader, lo, hi):
            if observer is None:
                correct += b - a
            else:
                correct += truth.up_time(observer, a, b)

    return ElectionQoS(
        observation_time=observation,
        n_demotions=n_demotions,
        n_spurious_demotions=n_spurious,
        leader_stability=(
            observation / n_spurious if n_spurious else math.nan
        ),
        spurious_demotion_rate=(
            n_spurious / observation if observation > 0 else math.nan
        ),
        latencies=np.asarray(latencies, dtype=float),
        correct_leader_fraction=(
            correct / observation if observation > 0 else math.nan
        ),
    )


def cluster_agreement_time(
    timelines: Dict[str, Sequence[LeaderEvent]],
    truth: GroundTruth,
    *,
    after: float,
    end: float,
    initial: Optional[Dict[str, Optional[str]]] = None,
) -> float:
    """First instant in ``[after, end]`` from which every up process
    agrees on one up leader *through the end of the window* (``inf`` if
    never).  The Omega liveness property made measurable: after the
    last crash/recovery event, this is the cluster's stabilization
    instant."""
    initial = initial or {}
    # Candidate instants: `after` plus every event/boundary after it.
    instants = {after}
    for name, events in timelines.items():
        for ev in events:
            if after < ev.time <= end:
                instants.add(ev.time)
    for t in sorted(instants):
        if _agree_throughout(timelines, truth, t, end, initial):
            return t
    return math.inf


def _agree_throughout(timelines, truth, lo, hi, initial) -> bool:
    # Check agreement at `lo` and at every later change instant.
    checkpoints = {lo}
    for name, events in timelines.items():
        for ev in events:
            if lo < ev.time <= hi:
                checkpoints.add(ev.time)
    for t in sorted(checkpoints):
        up = truth.up_set(t)
        leaders = {
            leader_at(timelines[n], t, initial.get(n))
            for n in timelines
            if n in up
        }
        if len(leaders) != 1:
            return False
        leader = next(iter(leaders))
        if leader is None or leader not in up:
            return False
    return True
