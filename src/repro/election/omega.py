"""The Omega elector: elect the smallest trusted process.

The classic reduction (Chandra–Hasan–Toueg) from an eventually-accurate
failure detector to the Omega leader oracle: each process elects the
smallest process it currently trusts.  Whenever the underlying
detectors are eventually accurate, all correct processes eventually
trust the same set and therefore agree on one leader — and by
construction, **at any instant**, two mutually-trusted processes that
both consider themselves leader must be the same process (each would
have to be ≤ the other in the candidate order).

:class:`OmegaCore` is the pure, transport-agnostic state machine; it
consumes ``(time, process, output)`` transitions from *any* detector
backend — the object path, the SoA engine, sim or live — and maintains
the trusted set, the current leader, and a leader timeline.
:class:`ServiceElector` adapts a simulated
:class:`~repro.service.monitor_service.MonitorService`;
:class:`LiveElector` adapts a wall-clock
:class:`~repro.live.monitor.LiveMonitorService` via its subscription
hook.  Both rely on the services' incarnation dispatch: a stale
incarnation's transitions are muted at the source, so the elector can
never act on a superseded trust bit (pinned by
``tests/election/test_incarnation_races.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import InvalidParameterError
from repro.metrics.transitions import SUSPECT, TRUST

__all__ = ["LeaderEvent", "OmegaCore", "ServiceElector", "LiveElector"]


@dataclass(frozen=True)
class LeaderEvent:
    """One change of the elected leader.

    Attributes:
        time: when the leader changed.
        leader: the new leader (``None`` = no trusted candidate).
        previous: the leader before the change.
        reset: True when the change was caused by the elector itself
            restarting (crash-recovery of the *electing* process), not
            by a detector transition — consumer-QoS scoring must not
            charge these as demotions of the previous leader.
    """

    time: float
    leader: Optional[str]
    previous: Optional[str]
    reset: bool = False

    @property
    def is_demotion(self) -> bool:
        """The previous leader lost the leadership because it lost
        trust.  Under the min rule the two causes of a leader change
        are ordinally distinguishable: losing trust hands leadership to
        a *larger* candidate (or nobody), while a smaller candidate
        earning trust merely *preempts* — the previous leader is still
        trusted, and nothing was suspected."""
        if self.previous is None or self.reset:
            return False
        return self.leader is None or self.leader > self.previous

    @property
    def is_preemption(self) -> bool:
        """A smaller trusted candidate displaced a still-trusted leader."""
        return (
            self.previous is not None
            and self.leader is not None
            and self.leader < self.previous
        )


class OmegaCore:
    """Elects the smallest trusted candidate; keeps a leader timeline.

    Args:
        self_name: when the elector runs *on* one of the candidate
            processes, its own name — a process always trusts itself,
            so ``self_name`` is permanently in the trusted set.
        candidates: initial candidate names (all start untrusted, like
            the paper's detectors, which suspect until the first fresh
            heartbeat).
        registry: optional metrics registry; wires the
            ``election_leader_changes_total`` /
            ``election_demotions_total`` counters and the
            ``election_trusted_candidates`` / ``election_has_leader``
            gauges.
        keep_history: record a ``(time, trusted-set, leader)`` snapshot
            on every observed transition (the property suites sample
            these; turn off for indefinitely-running services).
    """

    def __init__(
        self,
        self_name: Optional[str] = None,
        candidates: Tuple[str, ...] = (),
        *,
        registry=None,
        keep_history: bool = True,
        label: str = "",
    ) -> None:
        self._self = self_name
        self._candidates = set(candidates)
        if self_name is not None:
            self._candidates.add(self_name)
        self._trusted = {self_name} if self_name is not None else set()
        self._leader: Optional[str] = min(self._trusted) if self._trusted else None
        self._events: List[LeaderEvent] = []
        self._keep_history = keep_history
        self._history: List[Tuple[float, frozenset, Optional[str]]] = []
        self._listeners: List[Callable[[LeaderEvent], None]] = []
        self._c_changes = self._c_demotions = None
        self._g_trusted = self._g_has_leader = None
        if registry is not None:
            labels = {"elector": label} if label else None
            self._c_changes = registry.counter(
                "election_leader_changes_total",
                "changes of the elected leader",
                labels=labels,
            )
            self._c_demotions = registry.counter(
                "election_demotions_total",
                "leader changes that demoted a previously elected leader",
                labels=labels,
            )
            self._g_trusted = registry.gauge(
                "election_trusted_candidates",
                "candidates currently trusted by the elector",
                labels=labels,
            )
            self._g_has_leader = registry.gauge(
                "election_has_leader",
                "1 while some candidate is trusted (a leader is elected)",
                labels=labels,
            )
            self._g_trusted.set(len(self._trusted))
            self._g_has_leader.set(0 if self._leader is None else 1)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    @property
    def self_name(self) -> Optional[str]:
        return self._self

    @property
    def leader(self) -> Optional[str]:
        """The currently elected leader (smallest trusted candidate)."""
        return self._leader

    @property
    def is_leader(self) -> bool:
        """Whether this process currently considers *itself* leader."""
        return self._self is not None and self._leader == self._self

    @property
    def trusted(self) -> frozenset:
        return frozenset(self._trusted)

    @property
    def candidates(self) -> frozenset:
        return frozenset(self._candidates)

    @property
    def events(self) -> Tuple[LeaderEvent, ...]:
        """The leader timeline, oldest first."""
        return tuple(self._events)

    @property
    def history(self) -> Tuple[Tuple[float, frozenset, Optional[str]], ...]:
        """``(time, trusted-set, leader)`` snapshots, one per observed
        transition (not just per leader change)."""
        return tuple(self._history)

    def subscribe(self, listener: Callable[[LeaderEvent], None]) -> None:
        """Register a callback for every leader change."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------ #
    # Inputs
    # ------------------------------------------------------------------ #

    def watch(self, name: str) -> None:
        """Add a candidate (it starts untrusted, like a fresh detector)."""
        self._candidates.add(name)

    def on_transition(self, time: float, name: str, output: str) -> None:
        """Feed one detector transition (``"S"`` or ``"T"``)."""
        if output not in (TRUST, SUSPECT):
            raise InvalidParameterError(
                f"output must be 'T' or 'S', got {output!r}"
            )
        self._candidates.add(name)
        if name == self._self:
            # A process always trusts itself; its own detector entry (if
            # any) cannot demote it locally.
            return
        if output == TRUST:
            self._trusted.add(name)
        else:
            self._trusted.discard(name)
        self._recompute(time)

    def reset(self, time: float) -> None:
        """Crash-recovery of the electing process itself: the restarted
        elector has no memory and trusts nobody (but itself) until its
        detectors re-deliver transitions.  Emits a ``reset`` leader
        event so consumer-QoS scoring does not charge a demotion."""
        self._trusted = {self._self} if self._self is not None else set()
        self._recompute(time, reset=True)

    def _recompute(self, time: float, reset: bool = False) -> None:
        new_leader = min(self._trusted) if self._trusted else None
        if self._g_trusted is not None:
            self._g_trusted.set(len(self._trusted))
        if self._keep_history:
            self._history.append((time, frozenset(self._trusted), new_leader))
        if new_leader == self._leader:
            return
        event = LeaderEvent(
            time=time, leader=new_leader, previous=self._leader, reset=reset
        )
        self._leader = new_leader
        self._events.append(event)
        if self._c_changes is not None:
            self._c_changes.inc()
            if event.is_demotion:
                self._c_demotions.inc()
            self._g_has_leader.set(0 if new_leader is None else 1)
        for listener in self._listeners:
            listener(event)


class ServiceElector:
    """An Omega elector fed by a simulated
    :class:`~repro.service.monitor_service.MonitorService`.

    Subscribes to the service's transition stream; every monitored
    process is a candidate.  Administrative S events (remove/restart)
    untrust the process like any suspicion — a departed process simply
    stays untrusted until a new incarnation earns trust again.  The
    service publishes only current-incarnation transitions, so the
    elector cannot act on a stale incarnation's trust bit.
    """

    def __init__(
        self,
        service,
        self_name: Optional[str] = None,
        *,
        registry=None,
        keep_history: bool = True,
        label: str = "",
    ) -> None:
        self._service = service
        self.core = OmegaCore(
            self_name,
            tuple(service.process_names),
            registry=registry,
            keep_history=keep_history,
            label=label,
        )
        service.subscribe(self._on_event)

    def _on_event(self, event) -> None:
        self.core.on_transition(event.time, event.process, event.output)

    @property
    def leader(self) -> Optional[str]:
        return self.core.leader

    @property
    def events(self) -> Tuple[LeaderEvent, ...]:
        return self.core.events


class LiveElector:
    """An Omega elector fed by a wall-clock
    :class:`~repro.live.monitor.LiveMonitorService`.

    Uses the service's subscription hook, which publishes detector
    transitions plus administrative S events at incarnation starts and
    removals — so a restarted peer is immediately untrusted until its
    new incarnation's first fresh heartbeat, and the elector never
    holds a trust bit that belongs to a finalized incarnation.
    """

    def __init__(
        self,
        service,
        self_name: Optional[str] = None,
        *,
        registry=None,
        keep_history: bool = True,
        label: str = "",
    ) -> None:
        self._service = service
        reg = registry if registry is not None else service.registry
        self.core = OmegaCore(
            self_name,
            tuple(service.peer_names),
            registry=reg,
            keep_history=keep_history,
            label=label,
        )
        service.subscribe(self._on_event)

    def _on_event(self, event) -> None:
        self.core.on_transition(event.time, event.process, event.output)

    @property
    def leader(self) -> Optional[str]:
        return self.core.leader

    @property
    def events(self) -> Tuple[LeaderEvent, ...]:
        return self.core.events
