"""repro.election — Omega leader election on top of the failure detectors.

The first *consumer* of the monitoring stack: an eventual-leader-election
(Omega) layer in the style of Reis & Vieira, "Quality of Service of an
Asynchronous Crash-Recovery Leader Election Algorithm" (PAPERS.md).  The
elector applies the classic reduction from an eventually-accurate
failure detector to Omega — *elect the smallest trusted process* — and
therefore inherits the detector's QoS directly: every detector mistake
on the current leader is a (possibly spurious) demotion, and every real
leader crash costs one detection time before a new leader can emerge.

* :mod:`repro.election.omega` — the elector state machine plus adapters
  for :class:`~repro.service.monitor_service.MonitorService` (sim) and
  :class:`~repro.live.monitor.LiveMonitorService` (wall clock);
* :mod:`repro.election.metrics` — consumer-level QoS: leader stability,
  election latency after a leader crash, spurious-demotion rate, scored
  against a crash/recovery ground truth;
* :mod:`repro.election.cluster` — an n-process simulated cluster where
  every process runs its own monitor + elector, with crash/recovery
  drivers for the property suites and the E17 experiment.
"""

from repro.election.cluster import ClusterResult, ElectionCluster
from repro.election.metrics import (
    ElectionQoS,
    GroundTruth,
    cluster_agreement_time,
    leader_at,
    score_election,
)
from repro.election.omega import (
    LeaderEvent,
    LiveElector,
    OmegaCore,
    ServiceElector,
)

__all__ = [
    "LeaderEvent",
    "OmegaCore",
    "ServiceElector",
    "LiveElector",
    "ElectionQoS",
    "GroundTruth",
    "leader_at",
    "score_election",
    "cluster_agreement_time",
    "ElectionCluster",
    "ClusterResult",
]
