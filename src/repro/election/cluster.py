"""An n-process simulated election cluster.

Every process runs its *own* monitor — a
:class:`~repro.service.monitor_service.MonitorService` tracking the
other ``n - 1`` processes — plus an Omega elector on top.  All monitors
share one :class:`~repro.sim.engine.Simulator`, so the cluster's
interleavings are deterministic under a seed, while each monitor's links
draw from independent random streams (two monitors observing the same
sender see different losses and delays, as on a real network).

Crash/recovery drivers keep a :class:`~repro.election.metrics.GroundTruth`
in lockstep with the simulation:

* ``crash(name, t)`` stops ``name``'s heartbeats toward every monitor
  (the detectors find out the hard way, one detection time later);
* ``recover(name, t)`` re-admits ``name`` under a **new incarnation** at
  every up monitor (paper footnote 2: recovery = new identity) and
  cold-restarts ``name``'s *own* monitor — a rebooted process has no
  detector state, so its pipelines restart from scratch and its elector
  is :meth:`~repro.election.omega.OmegaCore.reset` (trusting nobody but
  itself until fresh heartbeats arrive; still-down peers are re-crashed
  immediately so the fresh pipelines never trust them).

The result bundles the electors' leader timelines, the ground truth and
the per-monitor recovery traces — everything
:func:`~repro.election.metrics.score_election` and the recovery-aware
QoS estimators need.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.election.metrics import (
    GroundTruth,
    cluster_agreement_time,
    score_election,
)
from repro.election.omega import ServiceElector
from repro.net.delays import DelayDistribution
from repro.service.monitor_service import MonitorService
from repro.sim.engine import Simulator

__all__ = ["ElectionCluster", "ClusterResult"]

#: factory signature: ``(monitor, subject) -> HeartbeatFailureDetector``
DetectorFactory = Callable[[str, str], object]


def _prune_scenario(scenario, now: float):
    """Drop fault events a restarted incarnation can no longer see.

    Scenarios script *absolute* times and refuse to install events in
    the past, so a pipeline rebuilt mid-run (recovery = new incarnation)
    keeps only the windows still open and the point events still ahead.
    Returns ``None`` when nothing survives.
    """
    from repro.faults.scenario import FaultScenario

    keep = []
    for event in scenario.events:
        duration = getattr(event, "duration", None)
        if duration is not None:
            if getattr(event, "start") + duration > now:
                keep.append(event)
        elif getattr(event, "start", getattr(event, "time", 0.0)) >= now:
            keep.append(event)
    if not keep:
        return None
    return FaultScenario(keep, name=scenario.name)


@dataclass
class ClusterResult:
    """Everything a finished cluster run exposes for scoring."""

    truth: GroundTruth
    electors: Dict[str, ServiceElector]
    services: Dict[str, MonitorService]
    end: float

    @property
    def timelines(self):
        """``{monitor: leader-event tuple}`` for every monitor."""
        return {m: e.events for m, e in self.electors.items()}

    @property
    def initial_leaders(self) -> Dict[str, Optional[str]]:
        """Leader before any event: an elector on a candidate process
        elects itself at birth (it trusts only itself)."""
        return {m: m for m in self.electors}

    def qos(self, observer: str, *, start: float = 0.0):
        """Consumer-level QoS as seen by one monitor, masked to the
        instants that monitor was itself up."""
        return score_election(
            self.electors[observer].events,
            self.truth,
            start=start,
            end=self.end,
            initial=observer,
            observer=observer,
        )

    def agreement_time(self, *, after: Optional[float] = None) -> float:
        """First instant (default: after the last real crash/recovery)
        from which all up monitors agree on one up leader through the
        end of the run."""
        if after is None:
            after = self.truth.last_event_time
        return cluster_agreement_time(
            self.timelines,
            self.truth,
            after=after,
            end=self.end,
            initial=self.initial_leaders,
        )

    def recovery_traces(self, observer: str):
        """Per-identity recovery traces of ``observer``'s detectors."""
        return self.services[observer].recovery_traces()


class ElectionCluster:
    """Build and drive an n-monitor election over one simulator.

    Args:
        names: the candidate processes; each runs a monitor + elector.
        detector_factory: ``(monitor, subject) -> detector`` — called
            once per pipeline *and* once per restarted incarnation (the
            fresh identity gets a fresh detector).
        eta: heartbeat period shared by all senders.
        delay: link delay distribution (stateless; samples are drawn
            from each link's own stream).
        loss_probability: i.i.d. message-loss probability per link.
        seed: base seed; monitors derive independent streams from it.
        engine: ``"object"`` or ``"soa"`` — forwarded to every
            :class:`MonitorService`, so the election layer runs
            unchanged on both detector backends.
        registry: optional telemetry registry shared by all electors
            (labelled per monitor).
        scenario_factory: optional ``(monitor, subject) -> FaultScenario``
            applied to each *initial* pipeline (fault windows for the
            E17 fault table).  Restarted incarnations also consult it —
            scenarios script absolute times, so expired windows are
            simply inert.
        clock_factory: optional ``(monitor, subject) ->
            (sender_clock, monitor_clock)`` — per-pipeline clock skew /
            drift (fresh clocks per incarnation; the property suite
            fuzzes skew through this).
    """

    def __init__(
        self,
        names: Sequence[str],
        detector_factory: DetectorFactory,
        *,
        eta: float,
        delay: DelayDistribution,
        loss_probability: float = 0.0,
        seed: int = 0,
        engine: str = "object",
        registry=None,
        scenario_factory=None,
        clock_factory=None,
    ) -> None:
        names = tuple(names)
        if len(names) < 2:
            raise InvalidParameterError("an election needs >= 2 processes")
        if len(set(names)) != len(names):
            raise InvalidParameterError("duplicate process names")
        self._names = names
        self._factory = detector_factory
        self._eta = float(eta)
        self._delay = delay
        self._loss = float(loss_probability)
        self._scenarios = scenario_factory
        self._clocks = clock_factory
        self.sim = Simulator()
        self.truth = GroundTruth(names)
        self._down: set = set()
        self.services: Dict[str, MonitorService] = {}
        self.electors: Dict[str, ServiceElector] = {}
        for m in names:
            service = MonitorService(
                self.sim,
                seed=(int(seed) * 1000003 + zlib.crc32(m.encode("utf-8")))
                % (2**31),
                engine=engine,
            )
            for subject in names:
                if subject == m:
                    continue
                self._add_pipeline(service, m, subject, incarnation=0)
            self.services[m] = service
            self.electors[m] = ServiceElector(
                service, m, registry=registry, label=m
            )
        for service in self.services.values():
            service.start()

    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    def _add_pipeline(
        self, service: MonitorService, monitor: str, subject: str, incarnation: int
    ) -> None:
        scenario = (
            self._scenarios(monitor, subject)
            if self._scenarios is not None
            else None
        )
        if scenario is not None and self.sim.now > 0.0:
            scenario = _prune_scenario(scenario, self.sim.now)
        sender_clock = monitor_clock = None
        if self._clocks is not None:
            sender_clock, monitor_clock = self._clocks(monitor, subject)
        service.add_process(
            subject,
            self._factory(monitor, subject),
            eta=self._eta,
            delay=self._delay,
            loss_probability=self._loss,
            sender_clock=sender_clock,
            monitor_clock=monitor_clock,
            incarnation=incarnation,
            scenario=scenario,
        )

    def _restart_pipeline(
        self, service: MonitorService, monitor: str, subject: str
    ) -> None:
        incarnation = service.process(subject).incarnation + 1
        service.remove_process(subject)
        self._add_pipeline(service, monitor, subject, incarnation=incarnation)

    # ------------------------------------------------------------------ #
    # Ground-truth drivers
    # ------------------------------------------------------------------ #

    def crash(self, name: str, time: float) -> None:
        """Schedule a real crash of ``name`` at ``time``."""
        self.truth.crash(name, time)
        self.sim.schedule_at(time, lambda: self._do_crash(name))

    def recover(self, name: str, time: float) -> None:
        """Schedule a recovery (new incarnation) of ``name`` at
        ``time``.  Must be paired with an earlier :meth:`crash`."""
        self.truth.recover(name, time)
        self.sim.schedule_at(time, lambda: self._do_recover(name))

    def _do_crash(self, name: str) -> None:
        self._down.add(name)
        for m, service in self.services.items():
            if m == name or m in self._down:
                continue
            # Stop name's heartbeats toward this monitor; the real crash
            # instant is recorded so a *pre-crash* suspicion still
            # counts as a mistake in the recovery-aware accounting.
            service.crash(name)

    def _do_recover(self, name: str) -> None:
        self._down.discard(name)
        now = self.sim.now
        # 1. Every up monitor re-admits `name` under a new incarnation.
        for m, service in self.services.items():
            if m == name or m in self._down:
                continue
            self._restart_pipeline(service, m, name)
        # 2. `name`'s own monitor cold-restarts: the rebooted process
        #    has no detector state — fresh incarnations of every
        #    pipeline, elector reset to self-trust only.
        service = self.services[name]
        self.electors[name].core.reset(now)
        for subject in self._names:
            if subject == name:
                continue
            self._restart_pipeline(service, name, subject)
            if subject in self._down:
                # The peer is still really down: kill the fresh sender
                # immediately so the new pipeline never trusts it.
                service.crash(subject)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #

    def run_until(self, time: float) -> None:
        self.sim.run_until(time)

    def result(self) -> ClusterResult:
        """Snapshot the run for scoring (callable mid-run or at end)."""
        return ClusterResult(
            truth=self.truth,
            electors=dict(self.electors),
            services=dict(self.services),
            end=self.sim.now,
        )
