"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish configuration problems from runtime
misuse.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "QoSUnachievableError",
    "InvalidParameterError",
    "TraceError",
    "SimulationError",
    "EstimationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration procedure was given inconsistent or invalid inputs."""


class QoSUnachievableError(ConfigurationError):
    """The requested QoS cannot be achieved by *any* failure detector.

    Raised by the configuration procedures of Sections 4, 5 and 6 of the
    paper in the cases where they output "QoS cannot be achieved"
    (Theorems 7, 10 and 12 prove that in those cases no failure detector
    whatsoever can meet the requirements).
    """

    def __init__(self, message: str = "QoS cannot be achieved") -> None:
        super().__init__(message)


class InvalidParameterError(ReproError, ValueError):
    """A parameter value is outside its legal domain (e.g. ``eta <= 0``)."""


class TraceError(ReproError):
    """An output trace is malformed (e.g. non-alternating transitions)."""


class SimulationError(ReproError):
    """The simulation engine was driven into an inconsistent state."""


class EstimationError(ReproError):
    """An online estimator has insufficient or inconsistent data."""
