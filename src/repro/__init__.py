"""repro — Quality of Service of Failure Detectors.

A faithful, production-quality reproduction of

    Wei Chen, Sam Toueg, Marcos Kawazoe Aguilera:
    *On the Quality of Service of Failure Detectors*,
    DSN 2000 / IEEE Transactions on Computers 51(5), 2002.

The library provides:

* the paper's **QoS metric framework** (:mod:`repro.metrics`): detection
  time, mistake recurrence time, mistake duration, and the derived
  metrics related by Theorem 1;
* the **NFD family of detectors** (:mod:`repro.core`): NFD-S
  (synchronized clocks), NFD-U (known expected arrival times), NFD-E
  (estimated arrival times), plus the common-algorithm baseline, the
  φ-accrual extension, and Section 8's adaptive variant;
* the **exact analysis** (:mod:`repro.analysis`): Theorem 5's closed-form
  QoS, the distribution-free bounds of Theorems 9/11, and the three
  configuration procedures of Sections 4-6;
* **estimators** (:mod:`repro.estimation`) of the network behaviour from
  the heartbeat stream itself;
* a **simulation substrate** (:mod:`repro.sim`): probabilistic links,
  clock models, a discrete-event engine, and vectorized simulators for
  benchmark-scale statistics;
* a **monitoring service and group membership layer**
  (:mod:`repro.service`) scaling the two-process core to many processes;
* a **fault-injection layer** (:mod:`repro.faults`): scripted bursty
  loss, partitions, duplication/reordering, clock faults, and sender
  stalls for measuring QoS when the §3.1 assumptions are violated;
* **experiment drivers** (:mod:`repro.experiments`) regenerating every
  table and figure of the paper's evaluation.

Quickstart::

    from repro import (
        QoSRequirements, configure_nfds, ExponentialDelay, NFDS,
    )

    req = QoSRequirements(
        detection_time_upper=30.0,           # detect crashes within 30 s
        mistake_recurrence_lower=30 * 86400, # <= one mistake per month
        mistake_duration_upper=60.0,         # corrected within a minute
    )
    cfg = configure_nfds(req, loss_probability=0.01,
                         delay=ExponentialDelay(0.02))
    detector = NFDS(eta=cfg.eta, delta=cfg.delta)
"""

from repro.analysis import (
    NFDSAnalysis,
    NFDSConfig,
    NFDUConfig,
    QoSPrediction,
    configure_nfds,
    configure_nfds_unknown,
    configure_nfdu,
    eta_upper_bound,
    nfdu_analysis,
)
from repro.core import (
    NFDE,
    NFDS,
    NFDU,
    AdaptiveController,
    AdaptiveNFDE,
    Heartbeat,
    HeartbeatFailureDetector,
    PhiAccrualFD,
    SimpleFD,
)
from repro.errors import (
    ConfigurationError,
    EstimationError,
    InvalidParameterError,
    QoSUnachievableError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.faults import (
    FaultScenario,
    FaultyLink,
    GilbertElliottLink,
    run_failure_free_with_faults,
)
from repro.metrics import (
    OutputTrace,
    QoSRequirements,
    estimate_accuracy,
)
from repro.net import (
    ConstantDelay,
    DelayDistribution,
    ExponentialDelay,
    GammaDelay,
    LogNormalDelay,
    LossyLink,
    MixtureDelay,
    ParetoDelay,
    PerfectClock,
    SkewedClock,
    UniformDelay,
    WeibullDelay,
)
from repro.service import GroupMembership, MonitorService
from repro.sim import (
    SimulationConfig,
    Simulator,
    run_crash_runs,
    run_failure_free,
    simulate_nfde_fast,
    simulate_nfds_fast,
    simulate_nfdu_fast,
    simulate_sfd_fast,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "QoSUnachievableError",
    "InvalidParameterError",
    "TraceError",
    "SimulationError",
    "EstimationError",
    # metrics
    "OutputTrace",
    "QoSRequirements",
    "estimate_accuracy",
    # detectors
    "Heartbeat",
    "HeartbeatFailureDetector",
    "NFDS",
    "NFDU",
    "NFDE",
    "SimpleFD",
    "PhiAccrualFD",
    "AdaptiveNFDE",
    "AdaptiveController",
    # analysis
    "NFDSAnalysis",
    "QoSPrediction",
    "nfdu_analysis",
    "NFDSConfig",
    "NFDUConfig",
    "configure_nfds",
    "configure_nfds_unknown",
    "configure_nfdu",
    "eta_upper_bound",
    # network models
    "DelayDistribution",
    "ExponentialDelay",
    "UniformDelay",
    "ConstantDelay",
    "GammaDelay",
    "WeibullDelay",
    "LogNormalDelay",
    "ParetoDelay",
    "MixtureDelay",
    "LossyLink",
    "PerfectClock",
    "SkewedClock",
    # fault injection
    "GilbertElliottLink",
    "FaultyLink",
    "FaultScenario",
    "run_failure_free_with_faults",
    # simulation
    "Simulator",
    "SimulationConfig",
    "run_failure_free",
    "run_crash_runs",
    "simulate_nfds_fast",
    "simulate_nfdu_fast",
    "simulate_nfde_fast",
    "simulate_sfd_fast",
    # service
    "MonitorService",
    "GroupMembership",
]
