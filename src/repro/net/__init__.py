"""Probabilistic network substrate.

This package models the paper's network assumptions (Section 3.1): a link
between the monitored process *p* and the monitoring process *q* that may
*drop* each message independently with probability ``p_L`` and *delays* each
delivered message by an i.i.d. random variable ``D`` with finite mean and
variance.  It also provides the local-clock models used by the NFD-S
(synchronized), NFD-U and NFD-E (unsynchronized, drift-free) algorithms.
"""

from repro.net.clocks import (
    Clock,
    DriftingClock,
    FaultableClock,
    PerfectClock,
    SkewedClock,
)
from repro.net.delays import (
    ConstantDelay,
    DelayDistribution,
    EmpiricalDelay,
    ExponentialDelay,
    GammaDelay,
    LogNormalDelay,
    MixtureDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
    UniformDelay,
    WeibullDelay,
)
from repro.net.link import LinkStats, LossyLink, MessageRecord
from repro.net.topology import PathDelay, compose_path, end_to_end_behavior

__all__ = [
    "Clock",
    "PerfectClock",
    "SkewedClock",
    "DriftingClock",
    "FaultableClock",
    "DelayDistribution",
    "ExponentialDelay",
    "ShiftedExponentialDelay",
    "UniformDelay",
    "ConstantDelay",
    "GammaDelay",
    "WeibullDelay",
    "LogNormalDelay",
    "ParetoDelay",
    "MixtureDelay",
    "EmpiricalDelay",
    "LossyLink",
    "LinkStats",
    "MessageRecord",
    "PathDelay",
    "compose_path",
    "end_to_end_behavior",
]
