"""Local-clock models.

The paper distinguishes three clock regimes:

* **synchronized clocks** (Sections 3-5) — NFD-S shifts the *sending* times
  of heartbeats, which requires p's and q's clocks to agree;
* **unsynchronized, drift-free clocks** (Section 6) — NFD-U/NFD-E only need
  clocks that measure *intervals* accurately; an unknown constant skew
  between p and q is allowed;
* clock **drift** is assumed negligible (Section 3.1), but a drifting model
  is provided so tests and ablations can quantify how much drift the
  detectors actually tolerate.

A :class:`Clock` maps real (simulation) time to local time.  Detectors only
ever see local time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Tuple

from repro.errors import InvalidParameterError

__all__ = [
    "Clock",
    "PerfectClock",
    "SkewedClock",
    "DriftingClock",
    "FaultableClock",
]


class Clock(ABC):
    """Maps real time to this process's local time."""

    @abstractmethod
    def local_time(self, real_time: float) -> float:
        """Local clock reading at the given real time."""

    @abstractmethod
    def real_time(self, local_time: float) -> float:
        """Inverse mapping: real time at which the clock reads ``local_time``."""


class PerfectClock(Clock):
    """A clock perfectly synchronized with real time (NFD-S's assumption)."""

    def local_time(self, real_time: float) -> float:
        return real_time

    def real_time(self, local_time: float) -> float:
        return local_time


class SkewedClock(Clock):
    """A drift-free clock offset from real time by a constant ``skew``.

    This is the Section 6 regime: intervals are exact, absolute readings
    are off by an unknown constant.  The paper's key observation — that the
    variance of (arrival local time − send local time) is skew-invariant —
    is tested against this model.
    """

    def __init__(self, skew: float) -> None:
        self._skew = float(skew)

    @property
    def skew(self) -> float:
        return self._skew

    def local_time(self, real_time: float) -> float:
        return real_time + self._skew

    def real_time(self, local_time: float) -> float:
        return local_time - self._skew


class DriftingClock(Clock):
    """A clock with constant rate error: ``local = skew + (1+drift) * real``.

    The paper argues (Section 3.1) that drift rates around 1e-6 are
    negligible for failure detection; this model lets tests and ablations
    verify that claim empirically instead of taking it on faith.
    """

    def __init__(self, skew: float = 0.0, drift: float = 0.0) -> None:
        if drift <= -1.0:
            raise InvalidParameterError(
                f"drift must be > -1 (clock must move forward), got {drift}"
            )
        self._skew = float(skew)
        self._rate = 1.0 + float(drift)

    @property
    def skew(self) -> float:
        return self._skew

    @property
    def drift(self) -> float:
        return self._rate - 1.0

    def local_time(self, real_time: float) -> float:
        return self._skew + self._rate * real_time

    def real_time(self, local_time: float) -> float:
        return (local_time - self._skew) / self._rate


class FaultableClock(Clock):
    """A clock whose mapping can be re-programmed mid-run by fault events.

    The mapping is piecewise linear in real time: each fault event
    (:meth:`jump`, :meth:`set_drift`) appends a new segment
    ``(real_start, local_at_start, rate)``.  This is the clock the
    fault-injection layer (:mod:`repro.faults`) drives to model NTP
    steps, VM-migration clock jumps, and drift onset — the failure modes
    Section 3.1 assumes away.

    The inverse :meth:`real_time` needs a convention for the readings a
    *forward* jump skips over (the clock never shows them): the first
    real instant whose reading is at least the requested value is
    returned, i.e. the jump instant itself.  A *backward* jump makes
    some readings ambiguous; the earliest matching real time is
    returned.  Both conventions keep the heartbeat sender's send-slot
    arithmetic well-defined across a fault.
    """

    def __init__(self, skew: float = 0.0, drift: float = 0.0) -> None:
        if drift <= -1.0:
            raise InvalidParameterError(
                f"drift must be > -1 (clock must move forward), got {drift}"
            )
        # (real_start, local reading at real_start, rate) — appended in
        # real-time order, rates always positive.
        self._segments: List[Tuple[float, float, float]] = [
            (0.0, float(skew), 1.0 + float(drift))
        ]

    @property
    def n_faults(self) -> int:
        """Number of re-programmings applied so far."""
        return len(self._segments) - 1

    def _local_at(self, real_time: float) -> float:
        start, local, rate = self._segments[-1]
        return local + rate * (real_time - start)

    def _append(self, real_time: float, local: float, rate: float) -> None:
        last_start = self._segments[-1][0]
        if real_time < last_start:
            raise InvalidParameterError(
                f"clock faults must be applied in real-time order: "
                f"{real_time} < {last_start}"
            )
        self._segments.append((float(real_time), float(local), float(rate)))

    def jump(self, at_real_time: float, offset: float) -> None:
        """Step the clock by ``offset`` at ``at_real_time`` (rate unchanged)."""
        rate = self._segments[-1][2]
        local = self._local_at(at_real_time) + float(offset)
        self._append(at_real_time, local, rate)

    def set_drift(self, at_real_time: float, drift: float) -> None:
        """Change the clock's rate to ``1 + drift`` from ``at_real_time`` on."""
        if drift <= -1.0:
            raise InvalidParameterError(
                f"drift must be > -1 (clock must move forward), got {drift}"
            )
        local = self._local_at(at_real_time)
        self._append(at_real_time, local, 1.0 + float(drift))

    def local_time(self, real_time: float) -> float:
        segs = self._segments
        # Few segments per run (one per scripted fault): linear scan.
        for i in range(len(segs) - 1, -1, -1):
            start, local, rate = segs[i]
            if real_time >= start or i == 0:
                return local + rate * (real_time - start)
        raise AssertionError("unreachable")  # pragma: no cover

    def real_time(self, local_time: float) -> float:
        segs = self._segments
        start0, local0, rate0 = segs[0]
        if local_time < local0:
            return start0 + (local_time - local0) / rate0
        for i, (start, local, rate) in enumerate(segs):
            if local_time < local:
                # Reading inside the gap a forward jump opened: the
                # clock first shows >= local_time at the jump instant.
                return start
            if i + 1 < len(segs):
                end_local = local + rate * (segs[i + 1][0] - start)
                if local_time < end_local:
                    return start + (local_time - local) / rate
            else:
                return start + (local_time - local) / rate
        raise AssertionError("unreachable")  # pragma: no cover
