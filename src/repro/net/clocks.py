"""Local-clock models.

The paper distinguishes three clock regimes:

* **synchronized clocks** (Sections 3-5) — NFD-S shifts the *sending* times
  of heartbeats, which requires p's and q's clocks to agree;
* **unsynchronized, drift-free clocks** (Section 6) — NFD-U/NFD-E only need
  clocks that measure *intervals* accurately; an unknown constant skew
  between p and q is allowed;
* clock **drift** is assumed negligible (Section 3.1), but a drifting model
  is provided so tests and ablations can quantify how much drift the
  detectors actually tolerate.

A :class:`Clock` maps real (simulation) time to local time.  Detectors only
ever see local time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import InvalidParameterError

__all__ = ["Clock", "PerfectClock", "SkewedClock", "DriftingClock"]


class Clock(ABC):
    """Maps real time to this process's local time."""

    @abstractmethod
    def local_time(self, real_time: float) -> float:
        """Local clock reading at the given real time."""

    @abstractmethod
    def real_time(self, local_time: float) -> float:
        """Inverse mapping: real time at which the clock reads ``local_time``."""


class PerfectClock(Clock):
    """A clock perfectly synchronized with real time (NFD-S's assumption)."""

    def local_time(self, real_time: float) -> float:
        return real_time

    def real_time(self, local_time: float) -> float:
        return local_time


class SkewedClock(Clock):
    """A drift-free clock offset from real time by a constant ``skew``.

    This is the Section 6 regime: intervals are exact, absolute readings
    are off by an unknown constant.  The paper's key observation — that the
    variance of (arrival local time − send local time) is skew-invariant —
    is tested against this model.
    """

    def __init__(self, skew: float) -> None:
        self._skew = float(skew)

    @property
    def skew(self) -> float:
        return self._skew

    def local_time(self, real_time: float) -> float:
        return real_time + self._skew

    def real_time(self, local_time: float) -> float:
        return local_time - self._skew


class DriftingClock(Clock):
    """A clock with constant rate error: ``local = skew + (1+drift) * real``.

    The paper argues (Section 3.1) that drift rates around 1e-6 are
    negligible for failure detection; this model lets tests and ablations
    verify that claim empirically instead of taking it on faith.
    """

    def __init__(self, skew: float = 0.0, drift: float = 0.0) -> None:
        if drift <= -1.0:
            raise InvalidParameterError(
                f"drift must be > -1 (clock must move forward), got {drift}"
            )
        self._skew = float(skew)
        self._rate = 1.0 + float(drift)

    @property
    def skew(self) -> float:
        return self._skew

    @property
    def drift(self) -> float:
        return self._rate - 1.0

    def local_time(self, real_time: float) -> float:
        return self._skew + self._rate * real_time

    def real_time(self, local_time: float) -> float:
        return (local_time - self._skew) / self._rate
