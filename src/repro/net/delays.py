"""Message-delay distributions.

The paper's network model (Section 3.1) characterizes the link by a loss
probability ``p_L`` and a delay random variable ``D`` with range ``(0, ∞)``
and finite mean and variance.  The model deliberately does *not* fix a
distribution family; the analysis of Theorem 5 only needs ``P(D > x)``.

This module provides the distribution families used across the evaluation
and ablations.  Every family implements :class:`DelayDistribution`:

* ``cdf(x)``/``sf(x)`` — ``P(D ≤ x)`` and ``P(D > x)``, vectorized;
* ``prob_less(x)`` — ``P(D < x)``, which differs from ``cdf`` only for
  distributions with atoms (needed for the paper's ``q_0``);
* ``mean``/``variance`` — the moments used by the Section 5/6 configurators;
* ``sample(rng, size)`` — i.i.d. samples for simulation.

The Section 7 simulation study uses :class:`ExponentialDelay` with mean
0.02; the distribution-sensitivity ablation (E9 in DESIGN.md) exercises the
other families at matched mean and variance.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.errors import InvalidParameterError

__all__ = [
    "DelayDistribution",
    "ExponentialDelay",
    "ShiftedExponentialDelay",
    "UniformDelay",
    "ConstantDelay",
    "GammaDelay",
    "WeibullDelay",
    "LogNormalDelay",
    "ParetoDelay",
    "MixtureDelay",
    "EmpiricalDelay",
]

ArrayLike = Union[float, np.ndarray]


def _as_array(x: ArrayLike) -> np.ndarray:
    return np.asarray(x, dtype=float)


class DelayDistribution(ABC):
    """A distribution of message delays on ``(0, ∞)``.

    Subclasses must have finite mean and variance, matching the paper's
    standing assumption that ``E(D)`` and ``V(D)`` exist.
    """

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected delay ``E(D)``."""

    @property
    @abstractmethod
    def variance(self) -> float:
        """Delay variance ``V(D)``."""

    @property
    def std(self) -> float:
        """Standard deviation ``σ(D)``."""
        return math.sqrt(self.variance)

    @abstractmethod
    def cdf(self, x: ArrayLike) -> ArrayLike:
        """``P(D ≤ x)``; accepts scalars or arrays."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` i.i.d. delays."""

    def sf(self, x: ArrayLike) -> ArrayLike:
        """Survival function ``P(D > x)``."""
        return 1.0 - self.cdf(x)

    def atom(self, x: ArrayLike) -> ArrayLike:
        """``P(D = x)`` — nonzero only for distributions with point masses."""
        return np.zeros_like(_as_array(x)) if np.ndim(x) else 0.0

    def prob_less(self, x: ArrayLike) -> ArrayLike:
        """``P(D < x)`` (strict).  Equals ``cdf`` for continuous laws."""
        return self.cdf(x) - self.atom(x)

    def kinks(self) -> Tuple[float, ...]:
        """Points where the CDF is non-smooth (atoms / support edges).

        Used by the quadrature in :mod:`repro.analysis` to split the
        integration interval of ``∫ u(x) dx`` so that adaptive quadrature
        does not silently step over a discontinuity.
        """
        return ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(mean={self.mean:.6g}, "
            f"variance={self.variance:.6g})"
        )


class ExponentialDelay(DelayDistribution):
    """Exponential delays, ``P(D ≤ x) = 1 - exp(-x / mean)``.

    This is the distribution used throughout the paper's Section 7
    simulations (mean 0.02 time units): most messages are fast, a small
    fraction is much slower — typical of Internet paths.
    """

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise InvalidParameterError(f"mean must be positive, got {mean}")
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._mean**2

    def cdf(self, x: ArrayLike) -> ArrayLike:
        xa = _as_array(x)
        out = -np.expm1(-np.maximum(xa, 0.0) / self._mean)
        return float(out) if np.ndim(x) == 0 else out

    def sf(self, x: ArrayLike) -> ArrayLike:
        xa = _as_array(x)
        out = np.where(xa <= 0.0, 1.0, np.exp(-np.maximum(xa, 0.0) / self._mean))
        return float(out) if np.ndim(x) == 0 else out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(self._mean, size)


class ShiftedExponentialDelay(DelayDistribution):
    """A minimum propagation delay plus an exponential queueing tail.

    ``D = shift + Exp(scale)``.  Models links with a hard lower bound on
    latency (speed-of-light / transmission delay) — a common refinement of
    the plain exponential model.
    """

    def __init__(self, shift: float, scale: float) -> None:
        if shift < 0:
            raise InvalidParameterError(f"shift must be >= 0, got {shift}")
        if scale <= 0:
            raise InvalidParameterError(f"scale must be positive, got {scale}")
        self._shift = float(shift)
        self._scale = float(scale)

    @property
    def shift(self) -> float:
        return self._shift

    @property
    def mean(self) -> float:
        return self._shift + self._scale

    @property
    def variance(self) -> float:
        return self._scale**2

    def cdf(self, x: ArrayLike) -> ArrayLike:
        xa = _as_array(x)
        out = -np.expm1(-np.maximum(xa - self._shift, 0.0) / self._scale)
        return float(out) if np.ndim(x) == 0 else out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self._shift + rng.exponential(self._scale, size)

    def kinks(self) -> Tuple[float, ...]:
        return (self._shift,)


class UniformDelay(DelayDistribution):
    """Delays uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low < high:
            raise InvalidParameterError(
                f"need 0 <= low < high, got low={low}, high={high}"
            )
        self._low = float(low)
        self._high = float(high)

    @property
    def mean(self) -> float:
        return 0.5 * (self._low + self._high)

    @property
    def variance(self) -> float:
        return (self._high - self._low) ** 2 / 12.0

    def cdf(self, x: ArrayLike) -> ArrayLike:
        xa = _as_array(x)
        out = np.clip((xa - self._low) / (self._high - self._low), 0.0, 1.0)
        return float(out) if np.ndim(x) == 0 else out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self._low, self._high, size)

    def kinks(self) -> Tuple[float, ...]:
        return (self._low, self._high)

    @classmethod
    def from_mean_std(cls, mean: float, std: float) -> "UniformDelay":
        """Build the uniform distribution with the given mean and std."""
        half_width = std * math.sqrt(3.0)
        low = mean - half_width
        if low < 0:
            raise InvalidParameterError(
                f"mean={mean}, std={std} would need negative support"
            )
        return cls(low, mean + half_width)


class ConstantDelay(DelayDistribution):
    """Degenerate distribution: every message takes exactly ``value``.

    Useful for deterministic unit tests — with constant delays the behavior
    of every detector in this library is exactly predictable.
    """

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise InvalidParameterError(f"value must be positive, got {value}")
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    @property
    def mean(self) -> float:
        return self._value

    @property
    def variance(self) -> float:
        return 0.0

    def cdf(self, x: ArrayLike) -> ArrayLike:
        xa = _as_array(x)
        out = np.where(xa >= self._value, 1.0, 0.0)
        return float(out) if np.ndim(x) == 0 else out

    def atom(self, x: ArrayLike) -> ArrayLike:
        xa = _as_array(x)
        out = np.where(xa == self._value, 1.0, 0.0)
        return float(out) if np.ndim(x) == 0 else out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self._value)

    def kinks(self) -> Tuple[float, ...]:
        return (self._value,)


class GammaDelay(DelayDistribution):
    """Gamma-distributed delays with the given ``shape`` and ``scale``."""

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise InvalidParameterError(
                f"shape and scale must be positive, got {shape}, {scale}"
            )
        self._shape = float(shape)
        self._scale = float(scale)

    @property
    def mean(self) -> float:
        return self._shape * self._scale

    @property
    def variance(self) -> float:
        return self._shape * self._scale**2

    def cdf(self, x: ArrayLike) -> ArrayLike:
        from scipy.special import gammainc

        xa = _as_array(x)
        out = gammainc(self._shape, np.maximum(xa, 0.0) / self._scale)
        return float(out) if np.ndim(x) == 0 else out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.gamma(self._shape, self._scale, size)

    @classmethod
    def from_mean_std(cls, mean: float, std: float) -> "GammaDelay":
        shape = (mean / std) ** 2
        scale = std**2 / mean
        return cls(shape, scale)


class WeibullDelay(DelayDistribution):
    """Weibull-distributed delays (``shape`` k, ``scale`` λ)."""

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise InvalidParameterError(
                f"shape and scale must be positive, got {shape}, {scale}"
            )
        self._shape = float(shape)
        self._scale = float(scale)

    @property
    def mean(self) -> float:
        return self._scale * math.gamma(1.0 + 1.0 / self._shape)

    @property
    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self._shape)
        g2 = math.gamma(1.0 + 2.0 / self._shape)
        return self._scale**2 * (g2 - g1**2)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        xa = _as_array(x)
        out = -np.expm1(-((np.maximum(xa, 0.0) / self._scale) ** self._shape))
        return float(out) if np.ndim(x) == 0 else out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self._scale * rng.weibull(self._shape, size)


class LogNormalDelay(DelayDistribution):
    """Log-normal delays — a heavy-ish tail often observed on WAN paths."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise InvalidParameterError(f"sigma must be positive, got {sigma}")
        self._mu = float(mu)
        self._sigma = float(sigma)

    @property
    def mean(self) -> float:
        return math.exp(self._mu + self._sigma**2 / 2.0)

    @property
    def variance(self) -> float:
        s2 = self._sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self._mu + s2)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        from scipy.special import ndtr

        xa = _as_array(x)
        with np.errstate(divide="ignore"):
            z = (np.log(np.maximum(xa, 1e-300)) - self._mu) / self._sigma
        out = np.where(xa <= 0.0, 0.0, ndtr(z))
        return float(out) if np.ndim(x) == 0 else out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.lognormal(self._mu, self._sigma, size)

    @classmethod
    def from_mean_std(cls, mean: float, std: float) -> "LogNormalDelay":
        if mean <= 0 or std <= 0:
            raise InvalidParameterError("mean and std must be positive")
        s2 = math.log(1.0 + (std / mean) ** 2)
        mu = math.log(mean) - s2 / 2.0
        return cls(mu, math.sqrt(s2))


class ParetoDelay(DelayDistribution):
    """Pareto (power-law) delays: ``P(D > x) = (xm/x)^alpha`` for ``x ≥ xm``.

    ``alpha`` must exceed 2 so that the variance is finite (the paper's
    standing assumption).
    """

    def __init__(self, alpha: float, xm: float) -> None:
        if alpha <= 2:
            raise InvalidParameterError(
                f"alpha must be > 2 for finite variance, got {alpha}"
            )
        if xm <= 0:
            raise InvalidParameterError(f"xm must be positive, got {xm}")
        self._alpha = float(alpha)
        self._xm = float(xm)

    @property
    def mean(self) -> float:
        return self._alpha * self._xm / (self._alpha - 1.0)

    @property
    def variance(self) -> float:
        a, m = self._alpha, self._xm
        return m**2 * a / ((a - 1.0) ** 2 * (a - 2.0))

    def cdf(self, x: ArrayLike) -> ArrayLike:
        xa = _as_array(x)
        with np.errstate(divide="ignore"):
            out = np.where(
                xa < self._xm,
                0.0,
                1.0 - (self._xm / np.maximum(xa, self._xm)) ** self._alpha,
            )
        return float(out) if np.ndim(x) == 0 else out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        u = rng.random(size)
        return self._xm / (1.0 - u) ** (1.0 / self._alpha)

    def kinks(self) -> Tuple[float, ...]:
        return (self._xm,)

    @classmethod
    def from_mean_std(cls, mean: float, std: float) -> "ParetoDelay":
        """Solve for ``(alpha, xm)`` matching the given mean and std."""
        # variance/mean^2 = 1 / (alpha * (alpha - 2))
        ratio = (std / mean) ** 2
        # alpha^2 - 2 alpha - 1/ratio = 0  =>  alpha = 1 + sqrt(1 + 1/ratio)
        alpha = 1.0 + math.sqrt(1.0 + 1.0 / ratio)
        xm = mean * (alpha - 1.0) / alpha
        return cls(alpha, xm)


class MixtureDelay(DelayDistribution):
    """Finite mixture of delay distributions.

    Models bimodal paths — e.g. a fast direct route taken with probability
    0.95 and a slow fail-over route otherwise — and the "bursty traffic"
    regime of Section 8.1.2 where bursts are i.i.d. per message.
    """

    def __init__(
        self,
        components: Sequence[DelayDistribution],
        weights: Sequence[float],
    ) -> None:
        if len(components) == 0:
            raise InvalidParameterError("mixture needs at least one component")
        if len(components) != len(weights):
            raise InvalidParameterError(
                "components and weights must have the same length"
            )
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0) or not math.isclose(float(w.sum()), 1.0, rel_tol=1e-9):
            raise InvalidParameterError("weights must be >= 0 and sum to 1")
        self._components: List[DelayDistribution] = list(components)
        self._weights = w

    @property
    def components(self) -> Tuple[DelayDistribution, ...]:
        return tuple(self._components)

    @property
    def weights(self) -> np.ndarray:
        return self._weights.copy()

    @property
    def mean(self) -> float:
        return float(
            sum(w * c.mean for w, c in zip(self._weights, self._components))
        )

    @property
    def variance(self) -> float:
        # law of total variance
        m = self.mean
        second = sum(
            w * (c.variance + c.mean**2)
            for w, c in zip(self._weights, self._components)
        )
        return float(second - m**2)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        xa = _as_array(x)
        out = np.zeros_like(xa)
        for w, c in zip(self._weights, self._components):
            out = out + w * np.asarray(c.cdf(xa))
        return float(out) if np.ndim(x) == 0 else out

    def atom(self, x: ArrayLike) -> ArrayLike:
        xa = _as_array(x)
        out = np.zeros_like(xa)
        for w, c in zip(self._weights, self._components):
            out = out + w * np.asarray(c.atom(xa))
        return float(out) if np.ndim(x) == 0 else out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        choice = rng.choice(len(self._components), size=size, p=self._weights)
        out = np.empty(size, dtype=float)
        for idx, comp in enumerate(self._components):
            mask = choice == idx
            n = int(mask.sum())
            if n:
                out[mask] = comp.sample(rng, n)
        return out

    def kinks(self) -> Tuple[float, ...]:
        pts: List[float] = []
        for c in self._components:
            pts.extend(c.kinks())
        return tuple(sorted(set(pts)))


class EmpiricalDelay(DelayDistribution):
    """Distribution defined by observed delay samples (a delay *trace*).

    This is the bridge for users who have measured real one-way delays and
    want to run the analysis / configurators on their own data: the CDF is
    the empirical CDF, sampling is bootstrap resampling.
    """

    def __init__(self, samples: Sequence[float]) -> None:
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise InvalidParameterError("need at least one sample")
        if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
            raise InvalidParameterError("samples must be positive and finite")
        self._sorted = np.sort(arr)

    @property
    def n_samples(self) -> int:
        return int(self._sorted.size)

    @property
    def mean(self) -> float:
        return float(self._sorted.mean())

    @property
    def variance(self) -> float:
        if self._sorted.size == 1:
            return 0.0
        return float(self._sorted.var(ddof=1))

    def cdf(self, x: ArrayLike) -> ArrayLike:
        xa = _as_array(x)
        out = np.searchsorted(self._sorted, xa, side="right") / self._sorted.size
        return float(out) if np.ndim(x) == 0 else out

    def atom(self, x: ArrayLike) -> ArrayLike:
        xa = _as_array(x)
        right = np.searchsorted(self._sorted, xa, side="right")
        left = np.searchsorted(self._sorted, xa, side="left")
        out = (right - left) / self._sorted.size
        return float(out) if np.ndim(x) == 0 else out

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.choice(self._sorted, size=size, replace=True)

    def kinks(self) -> Tuple[float, ...]:
        # Cap the number of split points so quadrature stays tractable for
        # very large traces; the extremes and deciles capture the shape.
        if self._sorted.size <= 64:
            return tuple(np.unique(self._sorted))
        qs = np.quantile(self._sorted, np.linspace(0.0, 1.0, 65))
        return tuple(np.unique(qs))
