"""The lossy, delaying link between the monitored and monitoring process.

Section 3.1 of the paper: the link does not create or duplicate messages but
may *drop* each message independently with probability ``p_L`` and delays
each delivered message by an i.i.d. draw from a delay distribution ``D``.
This "message independence" assumption (footnote 10) is what makes the
closed-form analysis of Theorem 5 possible, and it is exactly what this
module implements.

Two interfaces are provided:

* :meth:`LossyLink.transmit` — per-message fate, used by the discrete-event
  simulator;
* :meth:`LossyLink.transmit_batch` — vectorized fates for ``n`` messages,
  used by :mod:`repro.sim.fastsim` (lost messages get delay ``+inf``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import InvalidParameterError
from repro.net.delays import DelayDistribution

__all__ = ["MessageRecord", "LinkEpoch", "LinkStats", "LossyLink"]


@dataclass(frozen=True)
class MessageRecord:
    """The fate of one message offered to the link.

    Attributes:
        seq: sequence number of the message (heartbeat index).
        send_time: time at which the sender handed the message to the link.
        delay: one-way delay; ``math.inf`` if the message was dropped.
    """

    seq: int
    send_time: float
    delay: float

    @property
    def lost(self) -> bool:
        """Whether the link dropped this message."""
        return math.isinf(self.delay)

    @property
    def arrival_time(self) -> float:
        """Receive time at the destination (``inf`` for lost messages)."""
        return self.send_time + self.delay


@dataclass
class LinkEpoch:
    """Counters for one regime — the span between two condition changes.

    ``loss_probability`` is the *configured* ``p_L`` of the regime, kept
    next to the counters so ``empirical_loss_rate`` can be compared to
    the rate it is supposed to converge to.
    """

    loss_probability: float
    offered: int = 0
    dropped: int = 0

    @property
    def delivered(self) -> int:
        return self.offered - self.dropped

    @property
    def empirical_loss_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.dropped / self.offered


class LinkStats:
    """Per-regime counters kept by a :class:`LossyLink`.

    A :meth:`~LossyLink.set_conditions` call (a regime change) starts a
    new :class:`LinkEpoch`; counters accumulate into the *current* epoch
    only.  The scalar properties (``offered``, ``dropped``,
    ``delivered``) are lifetime totals, but ``empirical_loss_rate`` is
    the **current epoch's** rate — blending pre- and post-regime traffic
    into one ratio (the old behaviour) produced a number that converges
    to no parameter of either regime.  The lifetime blend is still
    available as :attr:`lifetime_loss_rate`.
    """

    def __init__(self, loss_probability: float = 0.0) -> None:
        self.epochs: List[LinkEpoch] = [LinkEpoch(loss_probability)]

    @property
    def current_epoch(self) -> LinkEpoch:
        return self.epochs[-1]

    @property
    def n_epochs(self) -> int:
        return len(self.epochs)

    def begin_epoch(self, loss_probability: float) -> None:
        """Start a new regime's counter set.

        An epoch that saw no traffic is replaced in-place (two condition
        changes with no messages in between are one regime as far as the
        counters are concerned).
        """
        if self.current_epoch.offered == 0:
            self.epochs[-1] = LinkEpoch(loss_probability)
        else:
            self.epochs.append(LinkEpoch(loss_probability))

    def record(self, dropped: bool) -> None:
        epoch = self.epochs[-1]
        epoch.offered += 1
        if dropped:
            epoch.dropped += 1

    def record_batch(self, offered: int, dropped: int) -> None:
        epoch = self.epochs[-1]
        epoch.offered += offered
        epoch.dropped += dropped

    @property
    def offered(self) -> int:
        """Lifetime total of messages offered, across all epochs."""
        return sum(e.offered for e in self.epochs)

    @property
    def dropped(self) -> int:
        """Lifetime total of messages dropped, across all epochs."""
        return sum(e.dropped for e in self.epochs)

    @property
    def delivered(self) -> int:
        return self.offered - self.dropped

    @property
    def empirical_loss_rate(self) -> float:
        """Loss rate of the *current* regime (see class docstring)."""
        return self.current_epoch.empirical_loss_rate

    @property
    def lifetime_loss_rate(self) -> float:
        """Loss rate blended over every regime the link has been in."""
        offered = self.offered
        if offered == 0:
            return 0.0
        return self.dropped / offered


class LossyLink:
    """An end-to-end connection with Bernoulli loss and i.i.d. delays.

    Args:
        delay: the message-delay distribution ``D``.
        loss_probability: the per-message drop probability ``p_L``.
        rng: NumPy random generator; pass a seeded generator for
            reproducible runs.

    The link is *memoryless*: every call draws fresh loss and delay values,
    independent of all earlier messages, matching the paper's model.
    """

    def __init__(
        self,
        delay: DelayDistribution,
        loss_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise InvalidParameterError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        self._delay = delay
        self._p_l = float(loss_probability)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._stats = LinkStats(self._p_l)

    @property
    def delay_distribution(self) -> DelayDistribution:
        return self._delay

    @property
    def loss_probability(self) -> float:
        return self._p_l

    @property
    def stats(self) -> LinkStats:
        return self._stats

    def set_conditions(
        self,
        delay: Optional[DelayDistribution] = None,
        loss_probability: Optional[float] = None,
    ) -> None:
        """Change the link's behaviour mid-run (regime change).

        Messages already in flight keep their original fate; only future
        :meth:`transmit` calls see the new conditions.  This models the
        Section 8.1 scenario of a network whose probabilistic behaviour
        shifts (peak vs. off-peak traffic).  The stats open a new
        :class:`LinkEpoch`, so ``stats.empirical_loss_rate`` tracks the
        new regime instead of blending it with the old one.
        """
        if delay is not None:
            self._delay = delay
        if loss_probability is not None:
            if not 0.0 <= loss_probability < 1.0:
                raise InvalidParameterError(
                    f"loss_probability must be in [0, 1), got {loss_probability}"
                )
            self._p_l = float(loss_probability)
        self._stats.begin_epoch(self._p_l)

    def transmit(self, seq: int, send_time: float) -> MessageRecord:
        """Decide the fate of one message sent at ``send_time``."""
        if self._p_l > 0.0 and self._rng.random() < self._p_l:
            self._stats.record(dropped=True)
            return MessageRecord(seq=seq, send_time=send_time, delay=math.inf)
        delay = float(self._delay.sample(self._rng, 1)[0])
        self._stats.record(dropped=False)
        return MessageRecord(seq=seq, send_time=send_time, delay=delay)

    def transmit_batch(self, n: int) -> np.ndarray:
        """Draw the delays of ``n`` consecutive messages at once.

        Returns an array of ``n`` delays where lost messages appear as
        ``+inf``.  The caller supplies the send times; since losses and
        delays are i.i.d., fates do not depend on send times.
        """
        if n < 0:
            raise InvalidParameterError(f"n must be >= 0, got {n}")
        if n == 0:
            return np.empty(0, dtype=float)
        delays = self._delay.sample(self._rng, n).astype(float, copy=False)
        n_lost = 0
        if self._p_l > 0.0:
            lost = self._rng.random(n) < self._p_l
            delays = np.where(lost, np.inf, delays)
            n_lost = int(lost.sum())
        self._stats.record_batch(offered=n, dropped=n_lost)
        return delays
