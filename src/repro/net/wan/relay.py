"""Relay forwarding over a WAN: heartbeats traverse multi-hop routes.

The paper's link is an *end-to-end* abstraction (§3.1).  This module
drops that abstraction: a :class:`RoutedWanLink` forwards each heartbeat
hop by hop along the current shortest live route, so the end-to-end
delay is the sum of per-hop draws, the end-to-end loss compounds per
hop, and — the part no single-link model captures — a partition can cut
a link *while the message is in flight*, forcing a re-route from the
relay site it has reached (partial-connectivity forwarding in the style
of Sens et al.).

Determinism: a :class:`WanNetwork` is one run's mutable network state —
congestion episodes pre-sampled from the dedicated stream, one
Gilbert–Elliott chain per bursty link, all per-hop draws taken from the
single run generator in call order.  Same seed ⇒ bit-identical fates.

:class:`RoutedWanLink` is a drop-in for
:class:`~repro.net.link.LossyLink`: ``transmit`` returns the same
:class:`~repro.net.link.MessageRecord`, ``stats`` is a
:class:`~repro.net.link.LinkStats`, and ``delay_distribution`` /
``loss_probability`` expose the *fault-free composite* of the default
route — the single-link reduction the Theorem 5 analysis consumes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.faults.links import GilbertElliottLink
from repro.net.link import LinkStats, MessageRecord
from repro.net.topology import PathDelay
from repro.net.wan.congestion import CongestionField
from repro.net.wan.schedule import WanSchedule
from repro.net.wan.topology import LinkSpec, WanTopology, pair_key
from repro.telemetry.runtime import active as _telemetry_active

__all__ = ["WanNetwork", "RoutedWanLink"]


class _BurstChain:
    """One bursty link's Gilbert–Elliott state for one run.

    Parameters come from the equal-average construction of
    :meth:`GilbertElliottLink.from_average`; the chain consumes exactly
    two uniforms per message (fate, then transition), mirroring the
    single-link implementation draw for draw.
    """

    def __init__(self, spec: LinkSpec, rng: np.random.Generator) -> None:
        probe = GilbertElliottLink.from_average(
            spec.delay, spec.loss, spec.burst_length
        )
        self._p_good, self._p_bad = probe.state_loss_probabilities
        self._p_gb, self._p_bg = probe.transition_probabilities
        self._rng = rng
        self._bad = bool(rng.random() < probe.stationary_bad)

    @property
    def bad(self) -> bool:
        return self._bad

    def step(self) -> bool:
        """Fate of one message: drop?  Then one Markov transition."""
        p = self._p_bad if self._bad else self._p_good
        lost = bool(self._rng.random() < p)
        r = self._rng.random()
        if self._bad:
            if r < self._p_bg:
                self._bad = False
        else:
            if r < self._p_gb:
                self._bad = True
        return lost


class WanNetwork:
    """One run's instantiation of a :class:`WanTopology`.

    Args:
        topology: the declarative description.
        rng: the run's seeded generator; congestion episodes are drawn
            first (declaration order), then Gilbert–Elliott chains are
            initialised (sorted link order), then per-hop fates consume
            the stream in transmit order.
        horizon: run length — congestion episodes are pre-sampled up to
            this time.
        schedule: optional scripted partition/heal + regime overlay.
    """

    def __init__(
        self,
        topology: WanTopology,
        rng: np.random.Generator,
        horizon: float,
        schedule: Optional[WanSchedule] = None,
    ) -> None:
        self._topology = topology
        self._rng = rng
        self._schedule = schedule
        self.congestion = CongestionField(topology, rng, horizon)
        self._chains: Dict[Tuple[str, str], _BurstChain] = {
            spec.key: _BurstChain(spec, rng)
            for spec in topology.links
            if spec.burst_length is not None
        }
        # Route cache: the router's answer is pure topology + down-set,
        # so one entry serves every query between two schedule flips.
        self._routes: Dict[
            Tuple[str, str, frozenset], Optional[Tuple[str, ...]]
        ] = {}

    @property
    def topology(self) -> WanTopology:
        return self._topology

    @property
    def schedule(self) -> Optional[WanSchedule]:
        return self._schedule

    def link_down(self, key: Tuple[str, str], t: float) -> bool:
        """Whether the scripted schedule has this link cut at ``t``."""
        return self._schedule is not None and self._schedule.down(key, t)

    def down_set(self, t: float) -> frozenset:
        return (
            frozenset()
            if self._schedule is None
            else self._schedule.down_set(t)
        )

    def route(
        self, source: str, target: str, t: float
    ) -> Optional[List[str]]:
        """Shortest live route at time ``t``, or ``None`` if partitioned
        apart.  Cached per down-set."""
        down = self.down_set(t)
        key = (source, target, down)
        if key not in self._routes:
            path = self._topology.route(source, target, down=down)
            self._routes[key] = None if path is None else tuple(path)
        cached = self._routes[key]
        return None if cached is None else list(cached)

    def hop_fate(self, key: Tuple[str, str], t: float) -> Optional[float]:
        """One message's fate crossing one (live) link at time ``t``.

        Returns the hop delay, or ``None`` if the hop dropped it.  Draw
        order mirrors :class:`~repro.net.link.LossyLink`: the loss
        uniform is consumed only when the governing rate is positive,
        then the delay draw.  A scripted :class:`LossRegime` overrides a
        bursty link with *i.i.d.* loss at the scripted rate for its span
        (the regime states the rate; burstiness is the declared link's
        property) — the chain is not stepped during the override.
        """
        key = pair_key(*key)
        spec = self._topology.links_for(key)
        override = (
            None if self._schedule is None else self._schedule.loss_at(key, t)
        )
        if override is not None:
            lost = override > 0.0 and self._rng.random() < override
        elif key in self._chains:
            lost = self._chains[key].step()
        else:
            lost = spec.loss > 0.0 and self._rng.random() < spec.loss
        if lost:
            return None
        delay_dist = (
            None if self._schedule is None else self._schedule.delay_at(key, t)
        )
        if delay_dist is None:
            delay_dist = spec.delay
        delay = float(delay_dist.sample(self._rng, 1)[0])
        return delay * self.congestion.factor(key, t)


class RoutedWanLink:
    """A LossyLink-compatible link whose messages are relayed hop by hop.

    Each :meth:`transmit` walks the current shortest live route; when a
    scripted partition cuts the next hop at the moment the message would
    cross it, the message re-routes from the relay site it has reached
    (or is dropped when no route remains).  Counters:

    * ``route_flips`` — the route chosen at send time differed from the
      previous message's (route flapping across heals/partitions);
    * ``reroutes`` — mid-flight detours around a freshly cut link;
    * ``no_route_drops`` — messages dropped because no live route
      existed (at send time or mid-flight);
    * ``relay_drops`` — messages dropped by per-hop stochastic loss.

    ``delay_distribution``/``loss_probability`` expose the fault-free
    composite of the default route (via
    :meth:`WanTopology.compose_route`), which is exactly the single-link
    abstraction the analytic machinery consumes.
    """

    def __init__(
        self,
        network: WanNetwork,
        source: str,
        target: str,
        cdf_samples: int = 200_000,
        seed: int = 0,
    ) -> None:
        self._network = network
        self._source = source
        self._target = target
        delay, loss, path = network.topology.compose_route(
            source, target, cdf_samples=cdf_samples, seed=seed
        )
        self._composite_delay = delay
        self._composite_loss = loss
        self._default_path = tuple(path)
        self._stats = LinkStats(loss)
        self._last_path: Optional[Tuple[str, ...]] = None
        self.route_flips = 0
        self.reroutes = 0
        self.no_route_drops = 0
        self.relay_drops = 0

    # ------------------------------------------------------------------ #
    # LossyLink-compatible surface
    # ------------------------------------------------------------------ #

    @property
    def delay_distribution(self) -> PathDelay:
        return self._composite_delay

    @property
    def loss_probability(self) -> float:
        return self._composite_loss

    @property
    def stats(self) -> LinkStats:
        return self._stats

    @property
    def default_path(self) -> Tuple[str, ...]:
        return self._default_path

    @property
    def source(self) -> str:
        return self._source

    @property
    def target(self) -> str:
        return self._target

    def set_conditions(self, **_: object) -> None:
        raise InvalidParameterError(
            "a RoutedWanLink's behaviour is declared by its WanTopology "
            "and WanSchedule; script a LossRegime/DelayRegime on the "
            "inter-site link instead of set_conditions"
        )

    # ------------------------------------------------------------------ #
    # Relay transmit
    # ------------------------------------------------------------------ #

    def _emit(self, counter: str, help_text: str) -> None:
        registry = _telemetry_active()
        if registry is None:
            return
        registry.counter(
            counter,
            help_text,
            labels={
                "topology": self._network.topology.name,
                "route": f"{self._source}->{self._target}",
            },
        ).inc()

    def _drop(self, seq: int, send_time: float) -> MessageRecord:
        self._stats.record(dropped=True)
        return MessageRecord(seq=seq, send_time=send_time, delay=math.inf)

    def transmit(self, seq: int, send_time: float) -> MessageRecord:
        """Relay one message from source to target, hop by hop."""
        network = self._network
        path = network.route(self._source, self._target, send_time)
        if path is None:
            self.no_route_drops += 1
            self._emit(
                "wan_no_route_drops_total",
                "messages dropped with no live route",
            )
            self._last_path = None
            return self._drop(seq, send_time)
        chosen = tuple(path)
        if self._last_path is not None and chosen != self._last_path:
            self.route_flips += 1
            self._emit(
                "wan_route_flips_total",
                "send-time route changes between consecutive messages",
            )
        self._last_path = chosen

        # Accumulate elapsed delay separately from absolute time: the
        # round-trip (send_time + d) - send_time is not exact in floats,
        # and single-hop relays must match LossyLink bit for bit.
        total = 0.0
        site = path[0]
        i = 0
        while site != self._target:
            t = send_time + total
            nxt = path[i + 1]
            key = pair_key(site, nxt)
            if network.link_down(key, t):
                # The next hop was cut while the message was in flight:
                # re-route from the relay site it has reached.
                detour = network.route(site, self._target, t)
                self.reroutes += 1
                self._emit(
                    "wan_reroutes_total",
                    "mid-flight detours around a cut link",
                )
                if detour is None:
                    self.no_route_drops += 1
                    self._emit(
                        "wan_no_route_drops_total",
                        "messages dropped with no live route",
                    )
                    return self._drop(seq, send_time)
                path = detour
                i = 0
                continue
            hop_delay = network.hop_fate(key, t)
            if hop_delay is None:
                self.relay_drops += 1
                return self._drop(seq, send_time)
            total += hop_delay
            site = nxt
            i += 1
        self._stats.record(dropped=False)
        return MessageRecord(seq=seq, send_time=send_time, delay=total)
