"""Analytic Theorem 5 cross-check for WAN routes.

The reduction is: a multi-hop route composes to a single ``(delay,
loss)`` pair by :func:`repro.net.topology.compose_path` additivity, and
that pair drops straight into the paper's NFD-S analysis —
:class:`~repro.analysis.nfds_theory.NFDSAnalysis` neither knows nor
cares that the "link" is three hops of WAN.  :func:`predict_route` does
the reduction; :func:`within_theorem5_band` gates pooled simulation
estimates against the closed-form prediction with the same
t-interval consistency check the fault-sensitivity experiment (E14)
uses; :func:`prediction_errors` quantifies the *relay distortion* — how
far the hop-by-hop forwarding reality drifts from the composed
single-link idealisation (the two differ only through scheduled
partitions, congestion shocks and burstiness; fault-free they must
agree within Monte-Carlo noise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analysis.nfds_theory import NFDSAnalysis, QoSPrediction
from repro.errors import InvalidParameterError
from repro.metrics.confidence import mean_ci
from repro.net.topology import PathDelay
from repro.net.wan.topology import WanTopology

__all__ = [
    "WanPathPrediction",
    "predict_route",
    "within_theorem5_band",
    "detection_within_bound",
    "prediction_errors",
]


@dataclass(frozen=True)
class WanPathPrediction:
    """The Theorem 5 prediction for one WAN route.

    Attributes:
        source / target: the monitored pair of sites.
        path: the fault-free shortest route the composition reduced.
        delay: the composed end-to-end delay (exact additive moments,
            Monte-Carlo CDF).
        loss: the composed end-to-end loss ``1 − Π(1 − p_i)``.
        eta / delta: the NFD-S parameters the prediction assumes.
        prediction: the closed-form QoS of NFD-S over the composite.
    """

    source: str
    target: str
    path: Tuple[str, ...]
    delay: PathDelay
    loss: float
    eta: float
    delta: float
    prediction: QoSPrediction

    @property
    def detection_time_bound(self) -> float:
        """Theorem 5's worst-case detection time ``T_D = δ + η``."""
        return self.prediction.detection_time_bound


def predict_route(
    topology: WanTopology,
    source: str,
    target: str,
    eta: float,
    delta: float,
    down: frozenset = frozenset(),
    cdf_samples: int = 200_000,
    seed: int = 0,
) -> WanPathPrediction:
    """Reduce a WAN route to the paper's link model and run Theorem 5.

    ``down`` lets callers price a degraded topology: the prediction for
    "link X is partitioned" is the composition along the best *detour*.
    """
    delay, loss, path = topology.compose_route(
        source, target, down=down, cdf_samples=cdf_samples, seed=seed
    )
    prediction = NFDSAnalysis(
        eta=eta, delta=delta, loss_probability=loss, delay=delay
    ).predict()
    return WanPathPrediction(
        source=source,
        target=target,
        path=tuple(path),
        delay=delay,
        loss=loss,
        eta=eta,
        delta=delta,
        prediction=prediction,
    )


def within_theorem5_band(
    prediction: WanPathPrediction,
    tmr_samples: Sequence[float],
    tm_samples: Sequence[float],
    level: float = 0.95,
) -> bool:
    """Whether pooled simulation estimates are statistically consistent
    with the route's closed-form prediction.

    The same gate as the fault-sensitivity experiment: t-intervals on
    the pooled ``T_MR``/``T_M`` samples must contain the predicted
    means, and the query accuracy ``P_A = 1 − E(T_M)/E(T_MR)`` must lie
    in the conservative interval combining the two mean CIs.
    """
    p = prediction.prediction
    tmr_ci = mean_ci(tmr_samples, level=level)
    tm_ci = mean_ci(tm_samples, level=level)
    if not tmr_ci.contains(p.e_tmr):
        return False
    if not tm_ci.contains(p.e_tm):
        return False
    pa_low = 1.0 - tm_ci.high / tmr_ci.low
    pa_high = 1.0 - tm_ci.low / tmr_ci.high
    return pa_low <= p.query_accuracy <= pa_high


def detection_within_bound(
    prediction: WanPathPrediction,
    detection_times: Sequence[float],
    slack: float = 1e-9,
) -> bool:
    """Whether every observed crash-detection time respects ``δ + η``.

    Theorem 5's ``T_D`` is a *sure* bound for NFD-S, so a single finite
    violation (or an undetected crash, encoded as ``inf``/``nan``)
    fails the gate.
    """
    bound = prediction.detection_time_bound + slack
    times = np.asarray(list(detection_times), dtype=float)
    if times.size == 0:
        raise InvalidParameterError(
            "detection_within_bound needs at least one detection time"
        )
    if not np.all(np.isfinite(times)):
        return False
    return bool(np.all(times <= bound))


def prediction_errors(
    prediction: WanPathPrediction,
    tmr_samples: Sequence[float],
    tm_samples: Sequence[float],
) -> Dict[str, float]:
    """Signed relative errors of observation vs. prediction.

    ``(observed − predicted) / predicted`` for ``E(T_MR)``/``E(T_M)``,
    and the plain difference for ``P_A`` (already a probability).  Under
    scripted partitions/congestion these quantify the relay distortion;
    fault-free they sit within Monte-Carlo noise of zero.
    """
    p = prediction.prediction
    tmr = np.asarray(list(tmr_samples), dtype=float)
    tm = np.asarray(list(tm_samples), dtype=float)
    if tmr.size == 0 or tm.size == 0:
        raise InvalidParameterError(
            "prediction_errors needs non-empty T_MR and T_M samples"
        )
    obs_tmr = float(tmr.mean())
    obs_tm = float(tm.mean())
    obs_pa = 1.0 - obs_tm / obs_tmr if obs_tmr > 0 else math.nan
    return {
        "e_tmr": (obs_tmr - p.e_tmr) / p.e_tmr,
        "e_tm": (obs_tm - p.e_tm) / p.e_tm,
        "query_accuracy": obs_pa - p.query_accuracy,
    }
