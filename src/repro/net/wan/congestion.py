"""Correlated cross-link delay shocks from shared latent congestion.

Real WAN paths do not fail independently: two links that transit the
same backbone segment slow down *together* when that segment congests.
This module models exactly that: each :class:`~repro.net.wan.topology.
CongestionSpec` becomes one :class:`CongestionProcess` — an on/off
renewal process of congestion episodes, pre-sampled for the whole run
horizon from the dedicated ``STREAM_WAN_CONGESTION`` stream — and every
link loading on the spec reads the *same* process.  While an episode is
active, affected hop delays are multiplied by the spec's factor, so the
delay shocks are perfectly correlated across those links while the base
per-hop delay draws stay independent.

Pre-sampling the episodes (rather than stepping a Markov chain at
transmit time) keeps the run deterministic under any message
interleaving: the congestion state at time ``t`` is pure data, however
many links query it and in whatever order.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.net.wan.topology import CongestionSpec, WanTopology

__all__ = ["CongestionProcess", "CongestionField"]


class CongestionProcess:
    """Episodes of one latent congestion factor over ``[0, horizon]``.

    Gaps between episode starts are ``Exp(1/rate)``; episode durations
    are ``Exp(mean_duration)``.  Episodes may overlap their successor
    (heavy congestion); ``factor_at`` reports the spec factor while any
    episode covers ``t`` (shocks do not compound with themselves).
    """

    def __init__(
        self,
        spec: CongestionSpec,
        rng: np.random.Generator,
        horizon: float,
    ) -> None:
        if horizon <= 0 or not np.isfinite(horizon):
            raise InvalidParameterError(
                f"congestion needs a finite positive horizon, got {horizon}"
            )
        self._spec = spec
        episodes: List[Tuple[float, float]] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / spec.rate))
            if t >= horizon:
                break
            episodes.append(
                (t, t + float(rng.exponential(spec.mean_duration)))
            )
        self._starts = [s for s, _ in episodes]
        self._episodes = episodes
        # Running maximum of episode ends: an earlier episode may outlast
        # a later one, so "any episode covers t" needs the prefix max.
        self._max_end: List[float] = []
        running = -np.inf
        for _, end in episodes:
            running = max(running, end)
            self._max_end.append(running)

    @property
    def spec(self) -> CongestionSpec:
        return self._spec

    @property
    def episodes(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(self._episodes)

    def congested(self, t: float) -> bool:
        """Whether any episode covers time ``t``."""
        i = bisect.bisect_right(self._starts, t)
        return i > 0 and self._max_end[i - 1] > t

    def factor_at(self, t: float) -> float:
        return self._spec.factor if self.congested(t) else 1.0

    def congested_time(self, start: float, end: float, step: int = 4096) -> float:
        """Measure of ``[start, end)`` covered by episodes (exact union)."""
        if end <= start:
            return 0.0
        covered = 0.0
        cursor = start
        for s, e in self._episodes:
            lo = max(max(s, cursor), start)
            hi = min(e, end)
            if hi > lo:
                covered += hi - lo
                cursor = hi
        return covered


class CongestionField:
    """All of a topology's congestion processes, instantiated for one run.

    The draw order is the topology's declaration order, so one seeded
    generator reproduces the whole field bit-identically.
    """

    def __init__(
        self,
        topology: WanTopology,
        rng: np.random.Generator,
        horizon: float,
    ) -> None:
        self._processes = [
            CongestionProcess(spec, rng, horizon)
            for spec in topology.congestions
        ]
        # Link key -> indices of the processes loading on it.
        self._by_link = {
            spec.key: topology.congestion_indices(spec.key)
            for spec in topology.links
        }

    @property
    def processes(self) -> Tuple[CongestionProcess, ...]:
        return tuple(self._processes)

    def factor(self, key: Tuple[str, str], t: float) -> float:
        """Combined delay factor on link ``key`` at time ``t``.

        Distinct specs loading on the same link compound
        multiplicatively (independent shocks stack); a single spec never
        compounds with itself.
        """
        out = 1.0
        for i in self._by_link.get(key, ()):
            out *= self._processes[i].factor_at(t)
        return out
