"""Multi-datacenter WAN topologies for the failure-detector experiments.

The paper's link "represents an end-to-end connection and does not
necessarily correspond to a physical link" (Section 3.1).  This package
grows that abstraction into a *wide-area* substrate the experiments can
stress-test Theorem 5 against:

* :mod:`repro.net.wan.topology` — named **sites** and inter-site links
  carrying per-link delay/loss regimes (i.i.d. or Gilbert–Elliott
  bursty loss, reusing :mod:`repro.faults`), plus fault-free route
  composition via :func:`repro.net.topology.compose_path`;
* :mod:`repro.net.wan.congestion` — **correlated cross-link delay
  shocks**: a shared latent on/off congestion factor declared per site
  pair, inflating the delays of every link that loads on it;
* :mod:`repro.net.wan.schedule` — scripted **partition/heal schedules**
  per inter-site link, layered on :class:`repro.faults.FaultScenario`
  (the same event dataclasses, compiled to time-indexed queries);
* :mod:`repro.net.wan.relay` — the **relay forwarding model**: a
  :class:`RoutedWanLink` is a drop-in for
  :class:`~repro.net.link.LossyLink` whose heartbeats traverse the
  current shortest live route hop by hop, re-routing mid-flight when a
  partition cuts a link under them (Sens et al., partial connectivity);
* :mod:`repro.net.wan.analysis` — the **analytic cross-check**: derive
  the Theorem 5 prediction for a WAN path from its per-hop
  distributions and gate simulated QoS against the band.
"""

from repro.net.wan.analysis import (
    WanPathPrediction,
    detection_within_bound,
    prediction_errors,
    predict_route,
    within_theorem5_band,
)
from repro.net.wan.congestion import CongestionField, CongestionProcess
from repro.net.wan.relay import RoutedWanLink, WanNetwork
from repro.net.wan.schedule import WanSchedule, periodic_partitions
from repro.net.wan.topology import CongestionSpec, LinkSpec, WanTopology

__all__ = [
    "WanTopology",
    "LinkSpec",
    "CongestionSpec",
    "CongestionProcess",
    "CongestionField",
    "WanSchedule",
    "periodic_partitions",
    "WanNetwork",
    "RoutedWanLink",
    "WanPathPrediction",
    "predict_route",
    "within_theorem5_band",
    "detection_within_bound",
    "prediction_errors",
]
