"""Scripted partition/heal schedules over a WAN topology.

A :class:`WanSchedule` maps inter-site links to
:class:`~repro.faults.scenario.FaultScenario` scripts and compiles them
into time-indexed queries: *is this link down at time t*, *what loss
rate / delay distribution governs it at t*, *which links are down at t*.
It deliberately reuses the :mod:`repro.faults` event dataclasses —
:class:`~repro.faults.scenario.Partition`,
:class:`~repro.faults.scenario.LossRegime` and
:class:`~repro.faults.scenario.DelayRegime` — so a script written for a
single link reads identically when layered onto a WAN link.  The other
event kinds (duplication, reordering, clock faults, stalls) act on a
*process*, not a link, and are rejected here; attach those through the
usual per-process :class:`~repro.faults.scenario.ScenarioEngine`.

Unlike the engine, which installs callbacks onto a simulator, the
schedule is compiled to pure data and queried by time.  That is what the
relay model needs: a heartbeat crossing three hops asks about link state
at three *different* times (its per-hop arrival times), which no
callback installed at a single simulator clock could answer.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.faults.scenario import (
    DelayRegime,
    FaultScenario,
    LossRegime,
    Partition,
)
from repro.net.delays import DelayDistribution
from repro.net.wan.topology import WanTopology, pair_key

__all__ = ["WanSchedule", "periodic_partitions"]

_LINK_EVENTS = (Partition, LossRegime, DelayRegime)


def _merge_intervals(
    spans: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Union of half-open ``[start, end)`` spans, sorted and disjoint."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class _LinkTrack:
    """One link's compiled schedule: partition spans + regime steps."""

    def __init__(self, scenario: FaultScenario) -> None:
        spans: List[Tuple[float, float]] = []
        loss_steps: List[Tuple[float, float]] = []
        delay_steps: List[Tuple[float, DelayDistribution]] = []
        for event in scenario.events:
            if isinstance(event, Partition):
                spans.append((event.start, event.start + event.duration))
            elif isinstance(event, LossRegime):
                if not event.loss_probability < 1.0:
                    raise InvalidParameterError(
                        "a WAN loss regime must keep loss < 1; script a "
                        "Partition to cut the link outright"
                    )
                loss_steps.append((event.time, event.loss_probability))
            elif isinstance(event, DelayRegime):
                delay_steps.append((event.time, event.delay))
            else:
                raise InvalidParameterError(
                    f"{type(event).__name__} is a per-process fault, not "
                    f"a link fault; WAN schedules accept only Partition/"
                    f"LossRegime/DelayRegime"
                )
        self._spans = _merge_intervals(spans)
        self._span_starts = [s for s, _ in self._spans]
        # FaultScenario orders events canonically, so same-time steps
        # resolve identically however the script listed them.
        self._loss_times = [t for t, _ in loss_steps]
        self._loss_values = [p for _, p in loss_steps]
        self._delay_times = [t for t, _ in delay_steps]
        self._delay_values = [d for _, d in delay_steps]

    def down(self, t: float) -> bool:
        i = bisect.bisect_right(self._span_starts, t)
        return i > 0 and t < self._spans[i - 1][1]

    def loss_at(self, t: float) -> Optional[float]:
        i = bisect.bisect_right(self._loss_times, t)
        return self._loss_values[i - 1] if i > 0 else None

    def delay_at(self, t: float) -> Optional[DelayDistribution]:
        i = bisect.bisect_right(self._delay_times, t)
        return self._delay_values[i - 1] if i > 0 else None

    @property
    def transitions(self) -> Tuple[float, ...]:
        out = set()
        for start, end in self._spans:
            out.add(start)
            out.add(end)
        return tuple(sorted(out))


class WanSchedule:
    """Per-link fault scripts over one topology, compiled for queries.

    Args:
        topology: every scripted site pair must be a declared link.
        scenarios: mapping ``(site_a, site_b) -> FaultScenario`` (pairs
            are canonicalized; order does not matter).
        name: label used in tables and telemetry.
    """

    def __init__(
        self,
        topology: WanTopology,
        scenarios: Mapping[Tuple[str, str], FaultScenario],
        name: str = "wan-schedule",
    ) -> None:
        self.name = str(name)
        self._tracks: Dict[Tuple[str, str], _LinkTrack] = {}
        self._scenarios: Dict[Tuple[str, str], FaultScenario] = {}
        for pair, scenario in scenarios.items():
            key = pair_key(*pair)
            topology.links_for(key)  # raises on an undeclared link
            if key in self._tracks:
                raise InvalidParameterError(
                    f"link {key} scripted twice (keys canonicalize to "
                    f"the same pair)"
                )
            self._tracks[key] = _LinkTrack(scenario)
            self._scenarios[key] = scenario

    @property
    def scenarios(self) -> Dict[Tuple[str, str], FaultScenario]:
        return dict(self._scenarios)

    @property
    def end_time(self) -> float:
        """Time after which the schedule changes nothing further."""
        return max(
            (s.end_time for s in self._scenarios.values()), default=0.0
        )

    def down(self, key: Tuple[str, str], t: float) -> bool:
        track = self._tracks.get(pair_key(*key))
        return track.down(t) if track is not None else False

    def loss_at(self, key: Tuple[str, str], t: float) -> Optional[float]:
        """The loss regime governing the link at ``t``, or ``None`` for
        the link's declared loss."""
        track = self._tracks.get(pair_key(*key))
        return track.loss_at(t) if track is not None else None

    def delay_at(
        self, key: Tuple[str, str], t: float
    ) -> Optional[DelayDistribution]:
        """The delay regime governing the link at ``t``, or ``None`` for
        the link's declared delay."""
        track = self._tracks.get(pair_key(*key))
        return track.delay_at(t) if track is not None else None

    def down_set(self, t: float) -> frozenset:
        """Canonical keys of every link partitioned at time ``t``."""
        return frozenset(
            key for key, track in self._tracks.items() if track.down(t)
        )

    @property
    def partition_transitions(self) -> Tuple[float, ...]:
        """Every time the down-set changes, sorted (route cache keys)."""
        out = set()
        for track in self._tracks.values():
            out.update(track.transitions)
        return tuple(sorted(out))


def periodic_partitions(
    first: float,
    period: float,
    duration: float,
    count: int,
    name: str = "periodic-partitions",
) -> FaultScenario:
    """``count`` partition windows of ``duration`` every ``period``.

    The classic WAN maintenance pattern: the link at ``first`` goes dark
    for ``duration``, heals, and repeats.  Returns a plain
    :class:`FaultScenario` so it can be layered per link in a
    :class:`WanSchedule` or driven through a
    :class:`~repro.faults.scenario.ScenarioEngine` unchanged.
    """
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    if duration >= period:
        raise InvalidParameterError(
            f"duration {duration} must be shorter than the period "
            f"{period} (the link must heal between windows)"
        )
    return FaultScenario(
        [
            Partition(start=first + i * period, duration=duration)
            for i in range(count)
        ],
        name=name,
    )
