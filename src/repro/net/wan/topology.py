"""Named sites and inter-site links with per-link delay/loss regimes.

A :class:`WanTopology` is the *declarative* description of a
multi-datacenter network: sites (datacenters) and inter-site links, each
link carrying a delay distribution and a loss regime — either i.i.d.
Bernoulli (the paper's §3.1 model) or Gilbert–Elliott bursty loss with a
given mean burst length (the :mod:`repro.faults` machinery).  Correlated
cross-link behaviour is declared as :class:`CongestionSpec` entries: a
shared latent on/off factor that inflates the delays of every link
loading on it (e.g. two links transiting the same backbone provider).

The topology itself holds no RNG and no mutable run state — one
description can be instantiated into any number of independent seeded
runs via :class:`repro.net.wan.relay.WanNetwork`.  Fault-free route
composition (:meth:`WanTopology.compose_route`) reduces any site pair to
the paper's single-link ``(delay, loss)`` abstraction through
:func:`repro.net.topology.compose_path`, which is what the analytic
cross-check in :mod:`repro.net.wan.analysis` builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import InvalidParameterError
from repro.net.delays import DelayDistribution
from repro.net.topology import PathDelay, compose_path

__all__ = ["LinkSpec", "CongestionSpec", "pair_key", "WanTopology"]


def pair_key(a: str, b: str) -> Tuple[str, str]:
    """Canonical unordered key of a site pair."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class LinkSpec:
    """One inter-site link's declared behaviour.

    ``burst_length`` selects the loss regime: ``None`` means i.i.d.
    Bernoulli loss at rate ``loss``; a value ``>= 1`` means
    Gilbert–Elliott bursty loss with the *same average rate* ``loss``
    and that mean burst length in messages (the equal-average
    construction of :meth:`repro.faults.GilbertElliottLink.from_average`).
    """

    a: str
    b: str
    delay: DelayDistribution
    loss: float = 0.0
    burst_length: Optional[float] = None

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise InvalidParameterError(
                f"a link needs two distinct sites, got {self.a!r} twice"
            )
        if not 0.0 <= self.loss < 1.0:
            raise InvalidParameterError(
                f"loss must be in [0, 1), got {self.loss}"
            )
        if self.burst_length is not None:
            if self.burst_length < 1.0:
                raise InvalidParameterError(
                    f"burst_length must be >= 1 message, got "
                    f"{self.burst_length}"
                )
            if self.loss <= 0.0:
                raise InvalidParameterError(
                    "bursty loss needs loss > 0 (the average rate the "
                    "Gilbert-Elliott chain is matched to)"
                )

    @property
    def key(self) -> Tuple[str, str]:
        """Canonical unordered link key."""
        return pair_key(self.a, self.b)


@dataclass(frozen=True)
class CongestionSpec:
    """One shared latent congestion factor.

    While an episode is active, the delay of every link whose site pair
    is listed in ``pairs`` is multiplied by ``factor`` — a *shared*
    shock, so the affected links' delays are correlated even though each
    still draws its own base delay.  Episodes arrive as a Poisson
    process of rate ``rate`` with exponential mean duration
    ``mean_duration`` (sampled per run from the dedicated
    ``STREAM_WAN_CONGESTION`` stream).
    """

    pairs: Tuple[Tuple[str, str], ...]
    rate: float
    mean_duration: float
    factor: float

    def __post_init__(self) -> None:
        if not self.pairs:
            raise InvalidParameterError(
                "a congestion factor must load on at least one site pair"
            )
        if self.rate <= 0.0:
            raise InvalidParameterError(
                f"rate must be positive, got {self.rate}"
            )
        if self.mean_duration <= 0.0:
            raise InvalidParameterError(
                f"mean_duration must be positive, got {self.mean_duration}"
            )
        if self.factor <= 1.0:
            raise InvalidParameterError(
                f"factor must exceed 1 (a shock inflates delay), got "
                f"{self.factor}"
            )


class WanTopology:
    """A declarative multi-site WAN description.

    Args:
        name: label used in tables and telemetry.
    """

    def __init__(self, name: str = "wan") -> None:
        self.name = str(name)
        self._sites: List[str] = []
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self._congestions: List[CongestionSpec] = []
        self._graph: Optional[nx.Graph] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_site(self, name: str) -> str:
        if not name:
            raise InvalidParameterError("site name must be non-empty")
        if name in self._sites:
            raise InvalidParameterError(f"site {name!r} already exists")
        self._sites.append(name)
        self._graph = None
        return name

    def add_link(
        self,
        a: str,
        b: str,
        delay: DelayDistribution,
        loss: float = 0.0,
        burst_length: Optional[float] = None,
    ) -> LinkSpec:
        """Declare the (bidirectional) link between sites ``a`` and ``b``."""
        for site in (a, b):
            if site not in self._sites:
                raise InvalidParameterError(
                    f"unknown site {site!r}; add_site it first"
                )
        spec = LinkSpec(
            a=a, b=b, delay=delay, loss=loss, burst_length=burst_length
        )
        if spec.key in self._links:
            raise InvalidParameterError(
                f"link {spec.key} already declared"
            )
        if burst_length is not None:
            # Fail at declaration time if no Gilbert-Elliott chain can
            # match this (average, burst) pair, not at first transmit.
            from repro.faults.links import GilbertElliottLink

            GilbertElliottLink.from_average(delay, loss, burst_length)
        self._links[spec.key] = spec
        self._graph = None
        return spec

    def add_congestion(
        self,
        pairs: Sequence[Tuple[str, str]],
        rate: float,
        mean_duration: float,
        factor: float,
    ) -> CongestionSpec:
        """Declare a shared latent congestion factor over site pairs."""
        canonical = []
        for a, b in pairs:
            key = pair_key(a, b)
            if key not in self._links:
                raise InvalidParameterError(
                    f"congestion references site pair {key} but no link "
                    f"is declared between those sites"
                )
            canonical.append(key)
        spec = CongestionSpec(
            pairs=tuple(canonical),
            rate=rate,
            mean_duration=mean_duration,
            factor=factor,
        )
        self._congestions.append(spec)
        return spec

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def sites(self) -> Tuple[str, ...]:
        return tuple(self._sites)

    @property
    def links(self) -> Tuple[LinkSpec, ...]:
        return tuple(self._links[k] for k in sorted(self._links))

    @property
    def congestions(self) -> Tuple[CongestionSpec, ...]:
        return tuple(self._congestions)

    def link(self, a: str, b: str) -> LinkSpec:
        key = pair_key(a, b)
        try:
            return self._links[key]
        except KeyError:
            raise InvalidParameterError(f"no link between {a!r} and {b!r}")

    def links_for(self, key: Tuple[str, str]) -> LinkSpec:
        return self.link(*key)

    def congestion_indices(self, key: Tuple[str, str]) -> Tuple[int, ...]:
        """Indices of the congestion specs loading on this link."""
        return tuple(
            i
            for i, spec in enumerate(self._congestions)
            if key in spec.pairs
        )

    def to_graph(self) -> nx.Graph:
        """A fresh :mod:`networkx` view with ``delay``/``loss`` edges.

        Suitable for :func:`repro.net.topology.end_to_end_behavior`;
        callers own the returned graph (mutating it does not touch the
        topology).
        """
        g = nx.Graph()
        g.add_nodes_from(self._sites)
        for spec in self._links.values():
            g.add_edge(spec.a, spec.b, delay=spec.delay, loss=spec.loss)
        return g

    def _routing_graph(self) -> nx.Graph:
        if self._graph is None:
            g = nx.Graph()
            g.add_nodes_from(self._sites)
            for spec in self._links.values():
                g.add_edge(spec.a, spec.b, mean=spec.delay.mean)
            self._graph = g
        return self._graph

    # ------------------------------------------------------------------ #
    # Routing and composition
    # ------------------------------------------------------------------ #

    def _check_site(self, site: str) -> None:
        if site not in self._sites:
            raise InvalidParameterError(f"unknown site {site!r}")

    def route(
        self,
        source: str,
        target: str,
        down: frozenset = frozenset(),
    ) -> Optional[List[str]]:
        """Shortest live route by total mean delay, or ``None``.

        ``down`` is a set of canonical link keys currently partitioned;
        those links are invisible to the router (a ``None`` weight hides
        the edge from :func:`networkx.shortest_path`).
        """
        self._check_site(source)
        self._check_site(target)
        if source == target:
            raise InvalidParameterError("source and target coincide")
        g = self._routing_graph()

        def weight(u, v, data):
            if pair_key(u, v) in down:
                return None
            return data["mean"]

        try:
            return nx.shortest_path(g, source, target, weight=weight)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def compose_route(
        self,
        source: str,
        target: str,
        down: frozenset = frozenset(),
        cdf_samples: int = 200_000,
        seed: int = 0,
    ) -> Tuple[PathDelay, float, List[str]]:
        """Fault-free end-to-end ``(delay, loss, path)`` along the best
        live route — the reduction of this WAN path to the paper's
        single-link abstraction (§3.1)."""
        path = self.route(source, target, down=down)
        if path is None:
            raise InvalidParameterError(
                f"no route from {source!r} to {target!r} "
                f"(down={sorted(down)})"
            )
        hops = [
            (self.link(u, v).delay, self.link(u, v).loss)
            for u, v in zip(path[:-1], path[1:])
        ]
        delay, loss = compose_path(hops, cdf_samples=cdf_samples, seed=seed)
        return delay, loss, path
