"""Multi-hop path composition of link behaviours.

The paper's link "represents an end-to-end connection and does not
necessarily correspond to a physical link" (Section 3.1).  This module
derives that end-to-end behaviour from a hop-by-hop network description:

* end-to-end **loss**: a message survives iff it survives every hop —
  ``p_L = 1 − Π (1 − p_i)`` under independent per-hop loss;
* end-to-end **delay**: the sum of independent per-hop delays.  The sum
  has no closed-form CDF in general, but its **mean and variance are
  exactly additive** — which is precisely all the Section 5/6
  distribution-free configurators need.  (A neat consequence of the
  paper's design: you can configure a certified detector over a path
  you only know hop-by-hop, without ever computing the composite delay
  law.)  For the exact Section 4 route, :class:`PathDelay` supports
  sampling, and :meth:`PathDelay.to_empirical` materializes a sampled
  empirical CDF.

Topologies are :mod:`networkx` graphs whose edges carry ``delay``
(a :class:`~repro.net.delays.DelayDistribution`) and ``loss``
attributes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from repro.errors import InvalidParameterError
from repro.net.delays import DelayDistribution, EmpiricalDelay

__all__ = ["PathDelay", "compose_path", "end_to_end_behavior"]

ArrayLike = Union[float, np.ndarray]


class PathDelay(DelayDistribution):
    """Sum of independent per-hop delays.

    Mean and variance are exact (additivity of independent sums); the
    CDF is estimated by Monte-Carlo convolution with a cached sample —
    adequate for the Section 4 configurator's tail probabilities down to
    roughly ``10/sample_size``; for anything sharper, increase
    ``cdf_samples`` or use the distribution-free Section 5 route, which
    needs no CDF at all.
    """

    def __init__(
        self,
        hops: Sequence[DelayDistribution],
        cdf_samples: int = 200_000,
        seed: int = 0,
    ) -> None:
        if not hops:
            raise InvalidParameterError("a path needs at least one hop")
        if cdf_samples < 1000:
            raise InvalidParameterError("cdf_samples must be >= 1000")
        self._hops: Tuple[DelayDistribution, ...] = tuple(hops)
        self._cdf_samples = int(cdf_samples)
        self._seed = int(seed)
        self._cached_sorted: Optional[np.ndarray] = None

    @property
    def hops(self) -> Tuple[DelayDistribution, ...]:
        return self._hops

    @property
    def mean(self) -> float:
        return float(sum(h.mean for h in self._hops))

    @property
    def variance(self) -> float:
        return float(sum(h.variance for h in self._hops))

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        total = np.zeros(size, dtype=float)
        for hop in self._hops:
            total += hop.sample(rng, size)
        return total

    def _samples_for_cdf(self) -> np.ndarray:
        if self._cached_sorted is None:
            rng = np.random.default_rng(self._seed)
            self._cached_sorted = np.sort(
                self.sample(rng, self._cdf_samples)
            )
        return self._cached_sorted

    def cdf(self, x: ArrayLike) -> ArrayLike:
        s = self._samples_for_cdf()
        xa = np.asarray(x, dtype=float)
        out = np.searchsorted(s, xa, side="right") / s.size
        return float(out) if np.ndim(x) == 0 else out

    def to_empirical(
        self, n: int = 100_000, seed: Optional[int] = None
    ) -> EmpiricalDelay:
        """Materialize a sampled empirical distribution of the path delay.

        The draws come from the namespaced ``STREAM_PATH_EMPIRICAL``
        stream (keyed by ``seed``, defaulting to the path's own seed),
        never from the raw seed the cached-CDF sample uses — reusing
        ``self._seed`` directly would replay the exact generator stream
        behind :meth:`cdf`, making the "fresh" materialization perfectly
        correlated with the cached sample instead of independent of it.
        """
        # Imported lazily: repro.net must stay importable on its own.
        from repro.sim.seeds import STREAM_PATH_EMPIRICAL, derive_rng

        rng = derive_rng(
            self._seed if seed is None else seed, STREAM_PATH_EMPIRICAL
        )
        return EmpiricalDelay(self.sample(rng, n))


def compose_path(
    hops: Sequence[Tuple[DelayDistribution, float]],
    cdf_samples: int = 200_000,
    seed: int = 0,
) -> Tuple[PathDelay, float]:
    """Compose ``(delay, loss)`` pairs into end-to-end ``(delay, loss)``."""
    if not hops:
        raise InvalidParameterError("a path needs at least one hop")
    survive = 1.0
    delays: List[DelayDistribution] = []
    for delay, loss in hops:
        if not 0.0 <= loss < 1.0:
            raise InvalidParameterError(
                f"per-hop loss must be in [0,1), got {loss}"
            )
        survive *= 1.0 - loss
        delays.append(delay)
    return (
        PathDelay(delays, cdf_samples=cdf_samples, seed=seed),
        1.0 - survive,
    )


def end_to_end_behavior(
    graph: nx.Graph,
    source,
    target,
    cdf_samples: int = 200_000,
    seed: int = 0,
) -> Tuple[PathDelay, float, list]:
    """End-to-end ``(delay, loss, path)`` along the best route.

    Routes by the smallest total *mean* delay (the conventional routing
    metric); every edge must carry ``delay`` (a
    :class:`DelayDistribution`) and ``loss`` attributes.

    The input graph is read-only: routing weights are computed into a
    local dict, never written back as edge attributes (which would
    silently clobber a caller's pre-existing attribute of that name).

    Returns the composite :class:`PathDelay`, the end-to-end loss
    probability, and the node path used.
    """
    weights = {}
    for u, v, data in graph.edges(data=True):
        if "delay" not in data or "loss" not in data:
            raise InvalidParameterError(
                f"edge ({u!r}, {v!r}) missing 'delay'/'loss' attributes"
            )
        mean = data["delay"].mean
        weights[(u, v)] = mean
        if not graph.is_directed():
            weights[(v, u)] = mean
    path = nx.shortest_path(
        graph, source, target, weight=lambda u, v, d: weights[(u, v)]
    )
    if len(path) < 2:
        raise InvalidParameterError("source and target coincide")
    hops = [
        (graph.edges[u, v]["delay"], graph.edges[u, v]["loss"])
        for u, v in zip(path[:-1], path[1:])
    ]
    delay, loss = compose_path(hops, cdf_samples=cdf_samples, seed=seed)
    return delay, loss, path
