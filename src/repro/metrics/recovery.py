"""Crash-recovery QoS accounting.

The paper's model is crash-stop (footnote 2: "a process that recovers
from a crash assumes a new identity"), and the runtime follows it: every
recovery produces a fresh ``(name, incarnation)`` pipeline with its own
:class:`~repro.metrics.transitions.OutputTrace`.  Per Reis & Vieira
("Quality of Service of an Asynchronous Crash-Recovery Leader Election
Algorithm", PAPERS.md), the QoS of a *consumer* of the detector — a
leader-election layer, a membership service — is defined over the
long-lived **identity**, not over one incarnation: a suspicion raised
while the process is genuinely down is *not* a mistake, and a mistake in
progress when the process really crashes stops costing anything at the
crash instant.

This module stitches per-incarnation traces back into a per-identity
*recovery trace* and scores it with recovery-aware mistake accounting:

* an **S-transition is a mistake** only if it fires strictly before the
  incarnation's real crash instant (at or after the crash it is a
  correct detection);
* **mistake durations truncate at the crash**: a mistake still open
  when the process dies is charged only for the span the process was up
  (the crash-stop estimator would either drop it or charge the full
  S→T interval);
* **good periods ended by a genuine crash detection are censored** (they
  were cut short by a real failure, not by a detector mistake), exactly
  as the crash-stop estimator censors the trailing good period at the
  end of the observation window;
* **observation time is up-time**: ``P_A`` and ``λ_M`` are normalized
  by the time the process was actually up, so a long outage cannot
  launder a flaky detector's accuracy.

Two identities tie this to the paper's crash-stop metrics and are pinned
by ``tests/conformance/test_recovery_identities.py``:

1. on a trace with **zero restarts and no crash**, every recovery-aware
   metric is *bit-identical* to :func:`repro.metrics.qos.estimate_accuracy`;
2. pooled accuracy is invariant to splitting a recovery trace at
   incarnation boundaries (no interval ever spans real downtime, so the
   split loses no samples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError, TraceError
from repro.metrics import relations
from repro.metrics.qos import (
    AccuracyEstimate,
    estimate_accuracy,
    pool_accuracy,
)
from repro.metrics.transitions import SUSPECT, TRUST, OutputTrace

__all__ = [
    "IncarnationSpan",
    "RecoveryTrace",
    "span_accuracy",
    "estimate_recovery_accuracy",
    "recovery_detection_times",
    "stitch_recovery_traces",
]


@dataclass(frozen=True)
class IncarnationSpan:
    """One incarnation's observation window plus its real crash instant.

    Attributes:
        incarnation: the incarnation counter of this pipeline.
        trace: the incarnation's closed output trace.
        crash_time: real time at which this incarnation crashed
            (``inf`` = it never crashed inside the observation window;
            a value at/after ``trace.end_time`` is equivalent).  The
            incarnation is *up* on ``[trace.start_time, crash_time)``
            and *down* from ``crash_time`` on — matching
            ``MonitoredProcess.crashed_by`` (``time >= crash_time``).
    """

    incarnation: int
    trace: OutputTrace
    crash_time: float = math.inf

    def __post_init__(self) -> None:
        if not self.trace.closed:
            raise TraceError("incarnation trace must be closed")
        if math.isnan(self.crash_time):
            raise InvalidParameterError("crash_time must not be NaN")

    @property
    def up_start(self) -> float:
        return self.trace.start_time

    @property
    def up_end(self) -> float:
        """End of the up window: the crash, or the trace end."""
        return min(self.crash_time, self.trace.end_time)

    @property
    def up_time(self) -> float:
        return max(0.0, self.up_end - self.up_start)

    @property
    def crashed(self) -> bool:
        """Whether the crash instant falls inside the trace window."""
        return self.crash_time < self.trace.end_time


class RecoveryTrace:
    """A per-identity sequence of incarnation spans.

    Spans must be ordered by strictly increasing incarnation with
    nondecreasing start times; up windows must not overlap (incarnation
    ``k+1`` starts at or after incarnation ``k``'s trace closed).
    """

    def __init__(self, name: str, spans: Sequence[IncarnationSpan]) -> None:
        if not spans:
            raise InvalidParameterError(
                f"recovery trace for {name!r} needs at least one span"
            )
        spans = tuple(spans)
        for prev, cur in zip(spans, spans[1:]):
            if cur.incarnation <= prev.incarnation:
                raise InvalidParameterError(
                    f"incarnations must strictly increase, got "
                    f"{prev.incarnation} then {cur.incarnation}"
                )
            if cur.trace.start_time < prev.trace.end_time:
                raise InvalidParameterError(
                    f"span windows overlap: incarnation {cur.incarnation} "
                    f"starts at {cur.trace.start_time} before incarnation "
                    f"{prev.incarnation} closed at {prev.trace.end_time}"
                )
        self._name = name
        self._spans = spans

    @property
    def name(self) -> str:
        return self._name

    @property
    def spans(self) -> Tuple[IncarnationSpan, ...]:
        return self._spans

    @property
    def n_restarts(self) -> int:
        return len(self._spans) - 1

    @property
    def start_time(self) -> float:
        return self._spans[0].trace.start_time

    @property
    def end_time(self) -> float:
        return self._spans[-1].trace.end_time

    @property
    def up_time(self) -> float:
        """Total time the identity was actually up."""
        return sum(s.up_time for s in self._spans)

    @property
    def down_time(self) -> float:
        """Total genuine downtime inside ``[start_time, end_time]``:
        post-crash tails of crashed spans plus the gaps between spans."""
        return (self.end_time - self.start_time) - self.up_time

    def up_at(self, time: float) -> bool:
        """Whether the identity was up at ``time`` (down during gaps)."""
        for span in self._spans:
            if span.up_start <= time < span.up_end:
                return True
        return False

    def split_at_incarnation(self, incarnation: int) -> Tuple["RecoveryTrace", "RecoveryTrace"]:
        """Split into two identities at an incarnation boundary.

        The first part holds spans with ``incarnation < incarnation``,
        the second the rest.  Both sides must be nonempty.
        """
        head = [s for s in self._spans if s.incarnation < incarnation]
        tail = [s for s in self._spans if s.incarnation >= incarnation]
        if not head or not tail:
            raise InvalidParameterError(
                f"split at incarnation {incarnation} leaves an empty side"
            )
        return (
            RecoveryTrace(self._name, head),
            RecoveryTrace(self._name, tail),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecoveryTrace({self._name!r}, {len(self._spans)} spans, "
            f"{self.n_restarts} restarts)"
        )


def _trusted_time_between(trace: OutputTrace, lo: float, hi: float) -> float:
    """Time the output is T inside ``[lo, hi]`` (subinterval of the trace)."""
    if hi <= lo:
        return 0.0
    trusted = 0.0
    cur = trace.initial_output
    cur_start = trace.start_time
    for tr in trace.transitions:
        seg_start = max(cur_start, lo)
        seg_end = min(tr.time, hi)
        if cur == TRUST and seg_end > seg_start:
            trusted += seg_end - seg_start
        cur = tr.kind.new_output
        cur_start = tr.time
    seg_start = max(cur_start, lo)
    if cur == TRUST and hi > seg_start:
        trusted += hi - seg_start
    return trusted


def span_accuracy(
    trace: OutputTrace,
    crash_time: float = math.inf,
    *,
    warmup: float = 0.0,
) -> AccuracyEstimate:
    """Recovery-aware accuracy estimate for one incarnation.

    With ``crash_time`` at/after the trace end this is — bit for bit —
    :func:`repro.metrics.qos.estimate_accuracy` (the crash-stop
    estimator observed the same window).  With a crash inside the
    window, accounting truncates at the crash instant:

    * S-transitions at/after the crash are correct detections, not
      mistakes;
    * the mistake open at the crash (if any) is charged ``crash - s``;
    * the good period open at the crash is censored (dropped);
    * ``P_A``/``λ_M`` normalize by up-time ``crash - start - warmup``.
    """
    if not trace.closed:
        raise TraceError("trace must be closed before estimation")
    if math.isnan(crash_time):
        raise InvalidParameterError("crash_time must not be NaN")
    if crash_time >= trace.end_time:
        return estimate_accuracy(trace, warmup=warmup)
    if warmup < 0:
        raise InvalidParameterError(f"warmup must be >= 0, got {warmup}")

    horizon_start = trace.start_time + warmup
    if crash_time <= horizon_start:
        # The incarnation crashed before (or the instant) steady state
        # was reached: nothing observable while up.
        return AccuracyEstimate(
            e_tmr=math.nan,
            e_tm=math.nan,
            e_tg=math.nan,
            query_accuracy=math.nan,
            mistake_rate=math.nan,
            e_tfg=math.nan,
            n_mistakes=0,
            observation_time=0.0,
            tmr_samples=np.empty(0, dtype=float),
            tm_samples=np.empty(0, dtype=float),
            tg_samples=np.empty(0, dtype=float),
        )

    times = [t.time for t in trace.transitions]
    kinds = [t.kind.new_output for t in trace.transitions]

    # Mistake S-transitions: strictly before the crash (the process is
    # already down *at* crash_time, mirroring crashed_by()).
    mistake_s = [
        t
        for t, out in zip(times, kinds)
        if out == SUSPECT and horizon_start <= t < crash_time
    ]
    tmr = np.diff(np.asarray(mistake_s, dtype=float))

    # Mistake durations, truncated at the crash.
    tm_list: List[float] = []
    tg_list: List[float] = []
    open_s = None  # time of the S-transition opening the current mistake
    open_t = None  # time of the T-transition opening the current good period
    for t, out in zip(times, kinds):
        if t >= crash_time:
            break
        if out == SUSPECT:
            if t >= horizon_start:
                open_s = t
            else:
                open_s = None
            if open_t is not None and open_t >= horizon_start:
                # Good period ended by a detector mistake: a sample.
                tg_list.append(t - open_t)
            open_t = None
        else:
            if open_s is not None:
                tm_list.append(t - open_s)
            open_s = None
            open_t = t
    if open_s is not None:
        # Mistake still open when the process died: it stops costing
        # anything at the crash instant.
        tm_list.append(crash_time - open_s)
    # A good period open at the crash is censored — ended by a real
    # failure, not by a mistake — exactly like the trailing good period
    # at the end of a crash-stop window.

    observation = crash_time - horizon_start
    trusted = _trusted_time_between(trace, horizon_start, crash_time)
    p_a = trusted / observation

    tm = np.asarray(tm_list, dtype=float)
    tg = np.asarray(tg_list, dtype=float)
    e_tmr = float(tmr.mean()) if tmr.size else math.nan
    e_tm = float(tm.mean()) if tm.size else math.nan
    e_tg = float(tg.mean()) if tg.size else math.nan
    rate = len(mistake_s) / observation if observation > 0 else math.nan
    if tg.size >= 2 and tg.mean() > 0:
        e_tfg = relations.forward_good_period_mean(
            float(tg.mean()), float(tg.var())
        )
    elif tg.size and tg.mean() == 0:
        e_tfg = 0.0
    else:
        e_tfg = math.nan

    return AccuracyEstimate(
        e_tmr=e_tmr,
        e_tm=e_tm,
        e_tg=e_tg,
        query_accuracy=p_a,
        mistake_rate=rate,
        e_tfg=e_tfg,
        n_mistakes=len(mistake_s),
        observation_time=observation,
        tmr_samples=tmr,
        tm_samples=tm,
        tg_samples=tg,
    )


def estimate_recovery_accuracy(
    recovery: RecoveryTrace,
    *,
    warmup: float = 0.0,
) -> AccuracyEstimate:
    """Recovery-aware accuracy over a whole identity.

    Per-incarnation estimates are pooled with
    :func:`repro.metrics.qos.pool_accuracy`: mistake-recurrence
    intervals never span real downtime (a mistake in incarnation ``k``
    and one in ``k+1`` are separated by a genuine failure, not by a
    good period), so per-span samples simply concatenate, and the
    time-weighted metrics combine by up-time.  ``warmup`` applies per
    incarnation — every restart brings a fresh detector with its own
    transient.

    With a single never-crashing span this returns that span's estimate
    unwrapped, preserving the bit-identity with the crash-stop
    estimator.
    """
    estimates = [
        span_accuracy(s.trace, s.crash_time, warmup=warmup)
        for s in recovery.spans
    ]
    if len(estimates) == 1:
        return estimates[0]
    return pool_accuracy(estimates)


def recovery_detection_times(recovery: RecoveryTrace) -> np.ndarray:
    """``T_D`` samples for every crash inside a recovery trace.

    For each span whose crash instant lies inside its trace window:
    ``0`` if the detector already suspected at the crash (a mistake the
    crash turned retroactively correct), else the delay to the first
    S-transition after the crash; ``inf`` if the incarnation's window
    closed with the crash still undetected (censored).
    """
    out: List[float] = []
    for span in recovery.spans:
        if not span.crashed:
            continue
        trace = span.trace
        crash = span.crash_time
        if trace.output_at(crash) == SUSPECT:
            out.append(0.0)
            continue
        later = trace.s_transition_times
        later = later[later >= crash]
        if later.size:
            out.append(float(later[0]) - crash)
        elif trace.current_output == SUSPECT:
            # Suspicion at the very end (close coincides with the flip).
            out.append(float(trace.end_time) - crash)
        else:
            out.append(math.inf)
    return np.asarray(out, dtype=float)


def stitch_recovery_traces(
    traces: Dict[Tuple[str, int], OutputTrace],
    crash_times: Dict[Tuple[str, int], float],
) -> Dict[str, RecoveryTrace]:
    """Group per-incarnation traces into per-identity recovery traces.

    Args:
        traces: closed traces keyed by ``(name, incarnation)`` — the
            shape of :meth:`MonitorService.finish` /
            :attr:`MonitorService.closed_traces`.
        crash_times: real crash instants for the same keys; missing keys
            mean the incarnation never crashed (``inf``).
    """
    by_name: Dict[str, List[IncarnationSpan]] = {}
    for (name, incarnation), trace in traces.items():
        crash = crash_times.get((name, incarnation), math.inf)
        by_name.setdefault(name, []).append(
            IncarnationSpan(incarnation, trace, crash)
        )
    return {
        name: RecoveryTrace(name, sorted(spans, key=lambda s: s.incarnation))
        for name, spans in by_name.items()
    }
