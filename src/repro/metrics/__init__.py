"""QoS metrics for failure detectors (Section 2 of the paper).

The paper specifies failure detectors by three *primary* metrics —
detection time ``T_D``, mistake recurrence time ``T_MR`` and mistake
duration ``T_M`` — and four metrics *derived* from them via Theorem 1:
average mistake rate ``λ_M``, query accuracy probability ``P_A``, good
period duration ``T_G`` and forward good period duration ``T_FG``.

* :mod:`repro.metrics.transitions` — the S/T output trace model;
* :mod:`repro.metrics.qos` — estimating all seven metrics from traces;
* :mod:`repro.metrics.recovery` — crash-recovery extension: stitching
  per-incarnation traces into per-identity recovery traces with
  recovery-aware mistake accounting;
* :mod:`repro.metrics.relations` — the Theorem 1 identities;
* :mod:`repro.metrics.confidence` — confidence intervals on estimates.
"""

from repro.metrics.confidence import ConfidenceInterval, bootstrap_mean_ci, mean_ci
from repro.metrics.io import (
    accuracy_from_dict,
    accuracy_to_dict,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.metrics.qos import (
    AccuracyEstimate,
    QoSRequirements,
    detection_times,
    estimate_accuracy,
    pool_accuracy,
)
from repro.metrics.recovery import (
    IncarnationSpan,
    RecoveryTrace,
    estimate_recovery_accuracy,
    recovery_detection_times,
    span_accuracy,
    stitch_recovery_traces,
)
from repro.metrics.relations import (
    derived_metrics,
    forward_good_period_cdf,
    forward_good_period_mean,
    forward_good_period_moment,
    mistake_rate,
    query_accuracy,
)
from repro.metrics.transitions import (
    SUSPECT,
    TRUST,
    OutputTrace,
    Transition,
    TransitionKind,
)

__all__ = [
    "SUSPECT",
    "TRUST",
    "Transition",
    "TransitionKind",
    "OutputTrace",
    "AccuracyEstimate",
    "QoSRequirements",
    "estimate_accuracy",
    "pool_accuracy",
    "detection_times",
    "IncarnationSpan",
    "RecoveryTrace",
    "span_accuracy",
    "estimate_recovery_accuracy",
    "recovery_detection_times",
    "stitch_recovery_traces",
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
    "accuracy_to_dict",
    "accuracy_from_dict",
    "derived_metrics",
    "mistake_rate",
    "query_accuracy",
    "forward_good_period_mean",
    "forward_good_period_moment",
    "forward_good_period_cdf",
    "ConfidenceInterval",
    "mean_ci",
    "bootstrap_mean_ci",
]
