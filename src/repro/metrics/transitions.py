"""Failure-detector output traces.

The output of the failure detector at *q* at any time is either ``S``
("suspect p") or ``T`` ("trust p").  A *transition* is a change of output:
an **S-transition** flips T→S (the detector *makes a mistake* when p is
up), a **T-transition** flips S→T (the detector *corrects* a mistake).
The paper adopts the convention that the output is right-continuous: at the
instant of a transition the output already has its new value (Appendix C).

:class:`OutputTrace` records an output history over a finite observation
window and exposes the interval decompositions the QoS metrics are defined
on (Fig. 4 of the paper):

* *mistake durations* ``T_M`` — S-transition → next T-transition;
* *good periods* ``T_G`` — T-transition → next S-transition;
* *mistake recurrence times* ``T_MR`` — S-transition → next S-transition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TraceError

__all__ = ["TRUST", "SUSPECT", "TransitionKind", "Transition", "OutputTrace"]


TRUST = "T"
SUSPECT = "S"


class TransitionKind(enum.Enum):
    """The two kinds of output transitions."""

    S_TRANSITION = "S"  # output changed from T to S (a new suspicion)
    T_TRANSITION = "T"  # output changed from S to T (suspicion retracted)

    @property
    def new_output(self) -> str:
        return TRUST if self is TransitionKind.T_TRANSITION else SUSPECT


@dataclass(frozen=True)
class Transition:
    """One output transition at a point in time."""

    time: float
    kind: TransitionKind

    @property
    def is_suspicion(self) -> bool:
        return self.kind is TransitionKind.S_TRANSITION


class OutputTrace:
    """An S/T output history over ``[start_time, end_time]``.

    The trace starts with ``initial_output`` at ``start_time`` (the paper's
    algorithms initialize to ``S``: *q* suspects *p* until the first fresh
    heartbeat arrives).  Transitions must be appended in nondecreasing time
    order; a transition to the current output is ignored (the detectors may
    re-assert their output, which is not a transition).

    The class is deliberately tolerant of *same-time* flips S→T→S, which
    NFD can produce when a freshness point and a message receipt coincide;
    such zero-length intervals are kept (they have measure zero and do not
    affect ``P_A``) but callers can drop them via ``drop_zero_length``.
    """

    def __init__(self, start_time: float = 0.0, initial_output: str = SUSPECT):
        if initial_output not in (TRUST, SUSPECT):
            raise TraceError(f"initial_output must be 'T' or 'S', got {initial_output!r}")
        self._start = float(start_time)
        self._initial = initial_output
        self._times: List[float] = []
        self._kinds: List[TransitionKind] = []
        self._end: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def record(self, time: float, output: str) -> bool:
        """Record that the output is ``output`` from ``time`` on.

        Returns True if this was an actual transition, False if the output
        was already ``output`` (no-op).
        """
        if self._end is not None:
            raise TraceError("trace already closed")
        if output not in (TRUST, SUSPECT):
            raise TraceError(f"output must be 'T' or 'S', got {output!r}")
        t = float(time)
        if t < self._start:
            raise TraceError(f"time {t} before trace start {self._start}")
        if self._times and t < self._times[-1]:
            raise TraceError(
                f"non-monotone transition time {t} < {self._times[-1]}"
            )
        if output == self.current_output:
            return False
        kind = (
            TransitionKind.T_TRANSITION
            if output == TRUST
            else TransitionKind.S_TRANSITION
        )
        self._times.append(t)
        self._kinds.append(kind)
        return True

    def close(self, end_time: float) -> "OutputTrace":
        """Close the observation window at ``end_time`` and return self."""
        t = float(end_time)
        last = self._times[-1] if self._times else self._start
        if t < last:
            raise TraceError(f"end_time {t} before last transition {last}")
        self._end = t
        return self

    @classmethod
    def from_transitions(
        cls,
        transitions: Iterable[Tuple[float, str]],
        start_time: float = 0.0,
        initial_output: str = SUSPECT,
        end_time: Optional[float] = None,
    ) -> "OutputTrace":
        """Build a closed trace from ``(time, output)`` pairs."""
        trace = cls(start_time=start_time, initial_output=initial_output)
        last = start_time
        for time, output in transitions:
            trace.record(time, output)
            last = max(last, time)
        trace.close(end_time if end_time is not None else last)
        return trace

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    @property
    def start_time(self) -> float:
        return self._start

    @property
    def end_time(self) -> float:
        if self._end is None:
            raise TraceError("trace not closed yet")
        return self._end

    @property
    def closed(self) -> bool:
        return self._end is not None

    @property
    def duration(self) -> float:
        return self.end_time - self._start

    @property
    def initial_output(self) -> str:
        return self._initial

    @property
    def current_output(self) -> str:
        if not self._kinds:
            return self._initial
        return self._kinds[-1].new_output

    @property
    def transitions(self) -> Tuple[Transition, ...]:
        return tuple(
            Transition(t, k) for t, k in zip(self._times, self._kinds)
        )

    @property
    def n_transitions(self) -> int:
        return len(self._times)

    def output_at(self, time: float) -> str:
        """Output at ``time`` (right-continuous, per the paper's convention)."""
        if time < self._start:
            raise TraceError(f"time {time} before trace start {self._start}")
        if self._end is not None and time > self._end:
            raise TraceError(f"time {time} after trace end {self._end}")
        idx = int(np.searchsorted(np.asarray(self._times), time, side="right"))
        if idx == 0:
            return self._initial
        return self._kinds[idx - 1].new_output

    def transition_times(self, kind: TransitionKind) -> np.ndarray:
        """Times of all transitions of the given kind, as an array."""
        return np.asarray(
            [t for t, k in zip(self._times, self._kinds) if k is kind],
            dtype=float,
        )

    @property
    def s_transition_times(self) -> np.ndarray:
        return self.transition_times(TransitionKind.S_TRANSITION)

    @property
    def t_transition_times(self) -> np.ndarray:
        return self.transition_times(TransitionKind.T_TRANSITION)

    # ------------------------------------------------------------------ #
    # Interval decompositions (Fig. 4)
    # ------------------------------------------------------------------ #

    def mistake_recurrence_samples(self) -> np.ndarray:
        """Times between consecutive S-transitions (``T_MR`` samples)."""
        s_times = self.s_transition_times
        return np.diff(s_times)

    def mistake_duration_samples(self) -> np.ndarray:
        """S-transition → next T-transition intervals (``T_M`` samples).

        Only *completed* mistakes are counted: a final suspicion period cut
        off by the end of the observation window is dropped (counting it
        would bias ``E(T_M)`` downward).
        """
        durations: List[float] = []
        open_s: Optional[float] = None
        for t, k in zip(self._times, self._kinds):
            if k is TransitionKind.S_TRANSITION:
                open_s = t
            elif open_s is not None:
                durations.append(t - open_s)
                open_s = None
        return np.asarray(durations, dtype=float)

    def good_period_samples(self) -> np.ndarray:
        """T-transition → next S-transition intervals (``T_G`` samples)."""
        periods: List[float] = []
        open_t: Optional[float] = None
        for t, k in zip(self._times, self._kinds):
            if k is TransitionKind.T_TRANSITION:
                open_t = t
            elif open_t is not None:
                periods.append(t - open_t)
                open_t = None
        return np.asarray(periods, dtype=float)

    def drop_zero_length(self) -> "OutputTrace":
        """Return a copy with zero-length intervals removed.

        A pair of same-time transitions (e.g. S at t immediately followed
        by T at t) cancels out; this normalization makes traces produced by
        different but equivalent implementations comparable.
        """
        pairs: List[Tuple[float, TransitionKind]] = list(
            zip(self._times, self._kinds)
        )
        # Repeatedly cancel adjacent same-time opposite transitions.
        changed = True
        while changed:
            changed = False
            out: List[Tuple[float, TransitionKind]] = []
            i = 0
            while i < len(pairs):
                if (
                    i + 1 < len(pairs)
                    and pairs[i][0] == pairs[i + 1][0]
                    and pairs[i][1] is not pairs[i + 1][1]
                ):
                    i += 2
                    changed = True
                else:
                    out.append(pairs[i])
                    i += 1
            pairs = out
        # After cancellation, consecutive same-kind records may appear; the
        # later one is redundant (output unchanged) and must be dropped.
        trace = OutputTrace(self._start, self._initial)
        for t, k in pairs:
            trace.record(t, k.new_output)
        if self._end is not None:
            trace.close(self._end)
        return trace

    # ------------------------------------------------------------------ #
    # Time-occupancy
    # ------------------------------------------------------------------ #

    def time_in_output(self, output: str) -> float:
        """Total time spent in ``output`` over the observation window."""
        if output not in (TRUST, SUSPECT):
            raise TraceError(f"output must be 'T' or 'S', got {output!r}")
        end = self.end_time
        total = 0.0
        cur = self._initial
        cur_start = self._start
        for t, k in zip(self._times, self._kinds):
            if cur == output:
                total += t - cur_start
            cur = k.new_output
            cur_start = t
        if cur == output:
            total += end - cur_start
        return total

    def empirical_query_accuracy(self) -> float:
        """Fraction of the window during which *q* trusts *p* (``P_A``)."""
        dur = self.duration
        if dur == 0.0:
            return 1.0 if self.current_output == TRUST else 0.0
        return self.time_in_output(TRUST) / dur

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        end = f", end={self._end}" if self._end is not None else " (open)"
        return (
            f"OutputTrace(start={self._start}, initial={self._initial!r}, "
            f"{len(self._times)} transitions{end})"
        )
