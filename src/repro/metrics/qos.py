"""Estimating the paper's QoS metrics from observed output traces.

* :class:`QoSRequirements` is the tuple ``(T_D^U, T_MR^L, T_M^U)`` of
  Section 4 — the contract an application hands to the configurators.
* :func:`estimate_accuracy` turns a failure-free :class:`OutputTrace` into
  an :class:`AccuracyEstimate` holding all six accuracy metrics.
* :func:`detection_times` measures ``T_D`` over a collection of crash runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError, TraceError
from repro.metrics import relations
from repro.metrics.transitions import SUSPECT, OutputTrace

__all__ = [
    "QoSRequirements",
    "AccuracyEstimate",
    "estimate_accuracy",
    "pool_accuracy",
    "detection_times",
]


@dataclass(frozen=True)
class QoSRequirements:
    """A QoS contract ``(T_D^U, T_MR^L, T_M^U)`` (paper, eq. 4.1).

    Attributes:
        detection_time_upper: ``T_D^U`` — worst-case detection time bound.
        mistake_recurrence_lower: ``T_MR^L`` — lower bound on the *average*
            time between mistakes.
        mistake_duration_upper: ``T_M^U`` — upper bound on the *average*
            time to correct a mistake.
    """

    detection_time_upper: float
    mistake_recurrence_lower: float
    mistake_duration_upper: float

    def __post_init__(self) -> None:
        for name in (
            "detection_time_upper",
            "mistake_recurrence_lower",
            "mistake_duration_upper",
        ):
            value = getattr(self, name)
            if not (value > 0 and math.isfinite(value)):
                raise InvalidParameterError(
                    f"{name} must be positive and finite, got {value}"
                )

    # Derived-metric bounds implied by the contract (paper, footnote 11).

    @property
    def mistake_rate_upper(self) -> float:
        """Implied bound ``λ_M ≤ 1 / T_MR^L``."""
        return 1.0 / self.mistake_recurrence_lower

    @property
    def query_accuracy_lower(self) -> float:
        """Implied bound ``P_A ≥ (T_MR^L - T_M^U) / T_MR^L``."""
        return (
            self.mistake_recurrence_lower - self.mistake_duration_upper
        ) / self.mistake_recurrence_lower

    @property
    def good_period_lower(self) -> float:
        """Implied bound ``E(T_G) ≥ T_MR^L - T_M^U``."""
        return self.mistake_recurrence_lower - self.mistake_duration_upper

    @property
    def forward_good_period_lower(self) -> float:
        """Implied bound ``E(T_FG) ≥ (T_MR^L - T_M^U) / 2``."""
        return self.good_period_lower / 2.0


@dataclass
class AccuracyEstimate:
    """Point estimates of the six accuracy metrics from one or more runs.

    ``nan`` marks metrics that could not be estimated from the available
    samples (e.g. no completed mistake in the window).
    """

    e_tmr: float
    e_tm: float
    e_tg: float
    query_accuracy: float
    mistake_rate: float
    e_tfg: float
    n_mistakes: int
    observation_time: float
    tmr_samples: np.ndarray = field(repr=False)
    tm_samples: np.ndarray = field(repr=False)
    tg_samples: np.ndarray = field(repr=False)

    def satisfies(
        self, req: QoSRequirements, *, slack: float = 1.0
    ) -> bool:
        """Whether the *accuracy* part of ``req`` holds for these estimates.

        ``slack`` < 1 tightens the check (useful in tests that must pass
        with statistical noise); detection time is checked separately via
        :func:`detection_times` since it needs crash runs.
        """
        if not math.isnan(self.e_tmr) and self.e_tmr < req.mistake_recurrence_lower * slack:
            return False
        if not math.isnan(self.e_tm) and self.e_tm > req.mistake_duration_upper / slack:
            return False
        return True


def estimate_accuracy(
    trace: OutputTrace,
    *,
    warmup: float = 0.0,
) -> AccuracyEstimate:
    """Estimate the accuracy metrics from a failure-free output trace.

    Args:
        trace: a closed output trace of a failure-free run.
        warmup: initial time span to drop, so estimates reflect steady
            state.  (NFD reaches steady state at its first freshness point,
            so a warmup of ``δ + η`` suffices for it; other detectors may
            need more.)
    """
    if not trace.closed:
        raise TraceError("trace must be closed before estimation")
    if warmup < 0:
        raise InvalidParameterError(f"warmup must be >= 0, got {warmup}")

    horizon_start = trace.start_time + warmup
    if horizon_start > trace.end_time:
        raise InvalidParameterError("warmup exceeds the trace duration")

    s_times = trace.s_transition_times
    s_times = s_times[s_times >= horizon_start]
    tmr = np.diff(s_times)

    tm_all = _intervals_after(trace.mistake_duration_samples(), trace, horizon_start, kind="M")
    tg_all = _intervals_after(trace.good_period_samples(), trace, horizon_start, kind="G")

    observation = trace.end_time - horizon_start
    # P_A over the post-warmup window.
    p_a = _query_accuracy_after(trace, horizon_start)

    e_tmr = float(tmr.mean()) if tmr.size else math.nan
    e_tm = float(tm_all.mean()) if tm_all.size else math.nan
    e_tg = float(tg_all.mean()) if tg_all.size else math.nan
    rate = s_times.size / observation if observation > 0 else math.nan
    if tg_all.size >= 2 and tg_all.mean() > 0:
        e_tfg = relations.forward_good_period_mean(
            float(tg_all.mean()), float(tg_all.var())
        )
    elif tg_all.size and tg_all.mean() == 0:
        e_tfg = 0.0
    else:
        e_tfg = math.nan

    return AccuracyEstimate(
        e_tmr=e_tmr,
        e_tm=e_tm,
        e_tg=e_tg,
        query_accuracy=p_a,
        mistake_rate=rate,
        e_tfg=e_tfg,
        n_mistakes=int(s_times.size),
        observation_time=observation,
        tmr_samples=tmr,
        tm_samples=tm_all,
        tg_samples=tg_all,
    )


def _intervals_after(
    samples: np.ndarray, trace: OutputTrace, horizon_start: float, kind: str
) -> np.ndarray:
    """Filter interval samples to those starting at/after ``horizon_start``.

    ``T_M`` intervals start at S-transitions; ``T_G`` intervals start at
    T-transitions.  We recompute starts from the trace to align samples
    with their start times.
    """
    if kind == "M":
        starts = trace.s_transition_times
        # mistake_duration_samples drops a trailing un-closed mistake, so
        # align lengths from the front.
        starts = starts[: samples.size]
    else:
        starts = trace.t_transition_times
        starts = starts[: samples.size]
    mask = starts >= horizon_start
    return samples[mask]


def _query_accuracy_after(trace: OutputTrace, horizon_start: float) -> float:
    """``P_A`` measured over ``[horizon_start, end]`` only."""
    if horizon_start <= trace.start_time:
        return trace.empirical_query_accuracy()
    end = trace.end_time
    if end == horizon_start:
        return 1.0 if trace.output_at(end) == "T" else 0.0
    # Accumulate trusted time after horizon_start by walking transitions.
    trusted = 0.0
    cur = trace.initial_output
    cur_start = trace.start_time
    for tr in trace.transitions:
        seg_start = max(cur_start, horizon_start)
        seg_end = min(tr.time, end)
        if cur == "T" and seg_end > seg_start:
            trusted += seg_end - seg_start
        cur = tr.kind.new_output
        cur_start = tr.time
    seg_start = max(cur_start, horizon_start)
    if cur == "T" and end > seg_start:
        trusted += end - seg_start
    return trusted / (end - horizon_start)


def pool_accuracy(estimates: Sequence[AccuracyEstimate]) -> AccuracyEstimate:
    """Pool the samples of several independent runs into one estimate.

    NFD's mistake-recurrence intervals are i.i.d. (Lemma 17), so samples
    from independent runs of the same configuration may simply be pooled;
    time-weighted quantities (``P_A``, ``λ_M``) are combined by total
    observation time.
    """
    if not estimates:
        raise InvalidParameterError("need at least one estimate to pool")
    tmr = np.concatenate([e.tmr_samples for e in estimates])
    tm = np.concatenate([e.tm_samples for e in estimates])
    tg = np.concatenate([e.tg_samples for e in estimates])
    total_time = sum(e.observation_time for e in estimates)
    n_mistakes = sum(e.n_mistakes for e in estimates)
    # Time-weighted quantities pool over the observation time of the
    # runs where they are *defined*: a run whose estimate is NaN must
    # drop out of the denominator too, or it silently biases the pooled
    # value downward (its time counts, its trusted/mistake mass
    # doesn't).
    trusted = 0.0
    pa_time = 0.0
    rate_mistakes = 0
    rate_time = 0.0
    for e in estimates:
        if not math.isnan(e.query_accuracy):
            trusted += e.query_accuracy * e.observation_time
            pa_time += e.observation_time
        if not math.isnan(e.mistake_rate):
            rate_mistakes += e.n_mistakes
            rate_time += e.observation_time
    p_a = trusted / pa_time if pa_time > 0 else math.nan
    if tg.size >= 2 and tg.mean() > 0:
        e_tfg = relations.forward_good_period_mean(
            float(tg.mean()), float(tg.var())
        )
    elif tg.size and tg.mean() == 0:
        e_tfg = 0.0
    else:
        e_tfg = math.nan
    return AccuracyEstimate(
        e_tmr=float(tmr.mean()) if tmr.size else math.nan,
        e_tm=float(tm.mean()) if tm.size else math.nan,
        e_tg=float(tg.mean()) if tg.size else math.nan,
        query_accuracy=p_a,
        mistake_rate=rate_mistakes / rate_time if rate_time > 0 else math.nan,
        e_tfg=e_tfg,
        n_mistakes=n_mistakes,
        observation_time=total_time,
        tmr_samples=tmr,
        tm_samples=tm,
        tg_samples=tg,
    )


def detection_times(
    crash_times: Sequence[float],
    traces: Sequence[OutputTrace],
) -> np.ndarray:
    """Measure ``T_D`` for a collection of crash runs.

    For each run, ``T_D`` is the time from the crash to the *final*
    S-transition after which the output never changes again (paper,
    Section 2.2).  If the final output of a trace is not ``S`` the
    detection never completed within the window and ``inf`` is recorded.
    If the last S-transition precedes the crash, ``T_D = 0``.
    """
    if len(crash_times) != len(traces):
        raise InvalidParameterError("crash_times and traces length mismatch")
    out = np.empty(len(traces), dtype=float)
    for i, (crash, trace) in enumerate(zip(crash_times, traces)):
        if not trace.closed:
            raise TraceError("traces must be closed")
        if trace.current_output != SUSPECT:
            out[i] = math.inf
            continue
        transitions = trace.transitions
        if not transitions:
            # Suspected from the start and never trusted: permanent
            # suspicion predates the crash.
            out[i] = 0.0
            continue
        final = transitions[-1].time
        out[i] = max(0.0, final - crash)
    return out
