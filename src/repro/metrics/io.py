"""Serialization of traces and accuracy estimates.

Long QoS evaluations are expensive (Fig. 12's large points simulate
hundreds of millions of heartbeats); being able to persist the output
traces and the derived estimates lets users separate *measurement* from
*analysis* — re-deriving metrics, recomputing confidence intervals, or
comparing runs without re-simulating.

Formats are plain JSON-compatible dictionaries (human-inspectable,
version-tagged) with NumPy arrays stored as lists.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.errors import TraceError
from repro.metrics.qos import AccuracyEstimate
from repro.metrics.transitions import OutputTrace

__all__ = [
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
    "accuracy_to_dict",
    "accuracy_from_dict",
]

_TRACE_FORMAT = "repro.trace/1"
_ACCURACY_FORMAT = "repro.accuracy/1"


def trace_to_dict(trace: OutputTrace) -> Dict[str, Any]:
    """Serialize a closed trace to a JSON-compatible dict."""
    if not trace.closed:
        raise TraceError("only closed traces can be serialized")
    return {
        "format": _TRACE_FORMAT,
        "start_time": trace.start_time,
        "end_time": trace.end_time,
        "initial_output": trace.initial_output,
        "transitions": [
            [t.time, t.kind.new_output] for t in trace.transitions
        ],
    }


def trace_from_dict(data: Dict[str, Any]) -> OutputTrace:
    """Reconstruct a trace serialized by :func:`trace_to_dict`."""
    if data.get("format") != _TRACE_FORMAT:
        raise TraceError(
            f"not a serialized trace (format={data.get('format')!r})"
        )
    return OutputTrace.from_transitions(
        [(float(t), str(o)) for t, o in data["transitions"]],
        start_time=float(data["start_time"]),
        initial_output=str(data["initial_output"]),
        end_time=float(data["end_time"]),
    )


def save_trace(trace: OutputTrace, path: Union[str, Path]) -> None:
    """Write a closed trace to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: Union[str, Path]) -> OutputTrace:
    """Read a trace written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))


def accuracy_to_dict(estimate: AccuracyEstimate) -> Dict[str, Any]:
    """Serialize an accuracy estimate, including the raw samples."""
    return {
        "format": _ACCURACY_FORMAT,
        "e_tmr": estimate.e_tmr,
        "e_tm": estimate.e_tm,
        "e_tg": estimate.e_tg,
        "query_accuracy": estimate.query_accuracy,
        "mistake_rate": estimate.mistake_rate,
        "e_tfg": estimate.e_tfg,
        "n_mistakes": estimate.n_mistakes,
        "observation_time": estimate.observation_time,
        "tmr_samples": estimate.tmr_samples.tolist(),
        "tm_samples": estimate.tm_samples.tolist(),
        "tg_samples": estimate.tg_samples.tolist(),
    }


def accuracy_from_dict(data: Dict[str, Any]) -> AccuracyEstimate:
    """Reconstruct an estimate serialized by :func:`accuracy_to_dict`."""
    if data.get("format") != _ACCURACY_FORMAT:
        raise TraceError(
            f"not a serialized accuracy estimate "
            f"(format={data.get('format')!r})"
        )
    return AccuracyEstimate(
        e_tmr=float(data["e_tmr"]),
        e_tm=float(data["e_tm"]),
        e_tg=float(data["e_tg"]),
        query_accuracy=float(data["query_accuracy"]),
        mistake_rate=float(data["mistake_rate"]),
        e_tfg=float(data["e_tfg"]),
        n_mistakes=int(data["n_mistakes"]),
        observation_time=float(data["observation_time"]),
        tmr_samples=np.asarray(data["tmr_samples"], dtype=float),
        tm_samples=np.asarray(data["tm_samples"], dtype=float),
        tg_samples=np.asarray(data["tg_samples"], dtype=float),
    )
