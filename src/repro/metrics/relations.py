"""The Theorem 1 identities relating the accuracy metrics.

For any *ergodic* failure detector (Section 2.4):

1. ``T_G = T_MR - T_M`` (by definition of the intervals);
2. if ``0 < E(T_MR) < ∞`` then ``λ_M = 1/E(T_MR)`` and
   ``P_A = E(T_G)/E(T_MR)``;
3. if additionally ``E(T_G) ≠ 0`` then

   * ``Pr(T_FG ≤ x) = ∫₀ˣ Pr(T_G > y) dy / E(T_G)``,
   * ``E(T_FG^k) = E(T_G^{k+1}) / [(k+1) · E(T_G)]``,
   * ``E(T_FG) = [1 + V(T_G)/E(T_G)²] · E(T_G) / 2``

   — the "waiting time paradox": the mean *remaining* good period seen by a
   randomly arriving observer generally exceeds ``E(T_G)/2``.

These functions are pure arithmetic on moments/samples so that they can be
applied both to analytic values (Theorem 5) and to empirical estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import InvalidParameterError

__all__ = [
    "mistake_rate",
    "query_accuracy",
    "good_period_mean",
    "forward_good_period_mean",
    "forward_good_period_moment",
    "forward_good_period_cdf",
    "DerivedMetrics",
    "derived_metrics",
]

ArrayLike = Union[float, np.ndarray]


def mistake_rate(e_tmr: float) -> float:
    """``λ_M = 1 / E(T_MR)`` (Theorem 1.2)."""
    if not e_tmr > 0:
        raise InvalidParameterError(f"E(T_MR) must be positive, got {e_tmr}")
    if math.isinf(e_tmr):
        return 0.0
    return 1.0 / e_tmr


def query_accuracy(e_tmr: float, e_tg: float) -> float:
    """``P_A = E(T_G) / E(T_MR)`` (Theorem 1.2)."""
    if not e_tmr > 0:
        raise InvalidParameterError(f"E(T_MR) must be positive, got {e_tmr}")
    if e_tg < 0:
        raise InvalidParameterError(f"E(T_G) must be >= 0, got {e_tg}")
    if math.isinf(e_tmr):
        return 1.0
    return e_tg / e_tmr


def good_period_mean(e_tmr: float, e_tm: float) -> float:
    """``E(T_G) = E(T_MR) - E(T_M)`` (Theorem 1.1, in expectation)."""
    if e_tm < 0:
        raise InvalidParameterError(f"E(T_M) must be >= 0, got {e_tm}")
    if e_tm > e_tmr:
        raise InvalidParameterError(
            f"E(T_M)={e_tm} cannot exceed E(T_MR)={e_tmr}"
        )
    return e_tmr - e_tm


def forward_good_period_mean(e_tg: float, v_tg: float) -> float:
    """``E(T_FG) = [1 + V(T_G)/E(T_G)²] · E(T_G)/2`` (Theorem 1.3c)."""
    if e_tg < 0 or v_tg < 0:
        raise InvalidParameterError("E(T_G) and V(T_G) must be >= 0")
    if e_tg == 0:
        return 0.0
    if v_tg == 0.0:
        return e_tg / 2.0  # also avoids overflow of e_tg**2 for huge e_tg
    return (1.0 + v_tg / e_tg**2) * e_tg / 2.0


def forward_good_period_moment(k: int, tg_samples: np.ndarray) -> float:
    """``E(T_FG^k) = E(T_G^{k+1}) / [(k+1)·E(T_G)]`` (Theorem 1.3b).

    Computed from empirical ``T_G`` samples.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    samples = np.asarray(tg_samples, dtype=float)
    if samples.size == 0:
        raise InvalidParameterError("need at least one T_G sample")
    e_tg = float(samples.mean())
    if e_tg == 0:
        return 0.0
    return float((samples ** (k + 1)).mean()) / ((k + 1) * e_tg)


def forward_good_period_cdf(x: ArrayLike, tg_samples: np.ndarray) -> ArrayLike:
    """``Pr(T_FG ≤ x)`` from empirical ``T_G`` samples (Theorem 1.3a).

    ``Pr(T_FG ≤ x) = ∫₀ˣ Pr(T_G > y) dy / E(T_G)``.  For an empirical
    distribution the integrand is a step function, so the integral is exact:
    ``∫₀ˣ Pr(T_G > y) dy = E[min(T_G, x)]``.
    """
    samples = np.asarray(tg_samples, dtype=float)
    if samples.size == 0:
        raise InvalidParameterError("need at least one T_G sample")
    e_tg = float(samples.mean())
    xa = np.asarray(x, dtype=float)
    if e_tg == 0:
        out = np.ones_like(xa)
        return float(out) if np.ndim(x) == 0 else out
    out = np.minimum.outer(xa, samples).mean(axis=-1) / e_tg
    return float(out) if np.ndim(x) == 0 else out


@dataclass(frozen=True)
class DerivedMetrics:
    """The four Section 2.3 metrics derived from the primary ones."""

    mistake_rate: float
    query_accuracy: float
    e_tg: float
    e_tfg: float


def derived_metrics(
    e_tmr: float, e_tm: float, v_tg: float = 0.0
) -> DerivedMetrics:
    """Derive all four secondary metrics from ``E(T_MR)``, ``E(T_M)``.

    ``v_tg`` (variance of the good period) is needed only for ``E(T_FG)``;
    pass 0 to get the lower bound ``E(T_G)/2``.
    """
    e_tg = good_period_mean(e_tmr, e_tm)
    return DerivedMetrics(
        mistake_rate=mistake_rate(e_tmr),
        query_accuracy=query_accuracy(e_tmr, e_tg),
        e_tg=e_tg,
        e_tfg=forward_good_period_mean(e_tg, v_tg),
    )
