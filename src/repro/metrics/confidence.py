"""Confidence intervals for estimated QoS metrics.

The paper's Fig. 12 plots point estimates over 500 mistake-recurrence
intervals; for a faithful *comparison* we additionally report confidence
intervals so that "NFD beats SFD by an order of magnitude" is a statistical
statement rather than an eyeball one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import stats

from repro.errors import InvalidParameterError

__all__ = ["ConfidenceInterval", "mean_ci", "bootstrap_mean_ci"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval around a point estimate."""

    point: float
    low: float
    high: float
    level: float

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.point:.6g} "
            f"[{self.low:.6g}, {self.high:.6g}] @ {self.level:.0%}"
        )


def mean_ci(samples: np.ndarray, level: float = 0.95) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of i.i.d. samples.

    ``T_MR`` intervals of NFD-S are i.i.d. (Lemma 17: the S-transition
    process is a delayed renewal process), so the t interval is the right
    tool for ``E(T_MR)`` despite the heavy tail.
    """
    if not 0 < level < 1:
        raise InvalidParameterError(f"level must be in (0,1), got {level}")
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise InvalidParameterError("need at least one sample")
    point = float(arr.mean())
    if arr.size == 1:
        return ConfidenceInterval(point, -math.inf, math.inf, level)
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    if sem == 0.0:
        return ConfidenceInterval(point, point, point, level)
    t = float(stats.t.ppf(0.5 + level / 2.0, df=arr.size - 1))
    return ConfidenceInterval(point, point - t * sem, point + t * sem, level)


def bootstrap_mean_ci(
    samples: np.ndarray,
    level: float = 0.95,
    n_resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the mean — robust for skewed samples."""
    if not 0 < level < 1:
        raise InvalidParameterError(f"level must be in (0,1), got {level}")
    if n_resamples < 10:
        raise InvalidParameterError("n_resamples must be >= 10")
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise InvalidParameterError("need at least one sample")
    if rng is None:
        rng = np.random.default_rng(0)
    point = float(arr.mean())
    if arr.size == 1:
        return ConfidenceInterval(point, -math.inf, math.inf, level)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(point, float(low), float(high), level)
