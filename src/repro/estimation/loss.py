"""Message-loss probability estimation (Section 5.2).

"To estimate ``p_L``, one can use the sequence numbers of the heartbeat
messages to count the number of 'missing' heartbeats and then divide this
count by the highest sequence number received so far."

A heartbeat counts as missing once some *higher* sequence number has been
received — reordered (late but delivered) messages are *un*-counted when
they eventually arrive, so the estimate converges to the true ``p_L``
rather than to ``p_L`` plus the reordering rate.

Long-running monitors need bounded state: a genuinely lost sequence
number never arrives, so an estimator that keeps every missing number in
a set grows as O(p_L · total heartbeats) over the life of the service.
Reordering, however, is a *local* phenomenon — a message displaced by
more than a few η is indistinguishable from a loss in practice — so the
estimator compacts: sequence numbers more than ``reorder_horizon`` below
the highest received one can no longer be un-counted and are folded into
a plain integer loss counter.  The estimate is unchanged for any
reordering displacement within the horizon, and memory is bounded by
O(p_L · reorder_horizon) regardless of run length.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.errors import EstimationError, InvalidParameterError

__all__ = ["LossRateEstimator"]


class LossRateEstimator:
    """Estimates ``p_L`` from observed heartbeat sequence numbers.

    Args:
        first_seq: the first sequence number the sender will use.
        reorder_horizon: how far (in sequence numbers) below the highest
            received heartbeat a missing number is still allowed to
            arrive late and be un-counted.  Numbers older than that are
            compacted into an integer lost-count, bounding memory for
            week-long monitors.  ``None`` disables compaction (the exact
            but unbounded behaviour).
    """

    def __init__(
        self,
        first_seq: int = 1,
        reorder_horizon: Optional[int] = 1024,
    ) -> None:
        if first_seq < 0:
            raise InvalidParameterError(f"first_seq must be >= 0, got {first_seq}")
        if reorder_horizon is not None and reorder_horizon < 1:
            raise InvalidParameterError(
                f"reorder_horizon must be >= 1, got {reorder_horizon}"
            )
        self._first_seq = int(first_seq)
        self._horizon = None if reorder_horizon is None else int(reorder_horizon)
        self._highest: Optional[int] = None
        self._received_count = 0
        # Sequence numbers below the highest that have not (yet) arrived
        # and are still within the reorder horizon.
        self._missing: Set[int] = set()
        # Missing numbers compacted out of the set: definitively lost.
        self._lost_compacted = 0
        # Sequence numbers the *monitor itself* shed after network
        # receipt (bounded-inbox overflow, shutdown races) — announced
        # via note_local_drop before the surrounding gap opens.  They
        # reached the machine, so they must not count toward p_L.
        self._local_drops: Set[int] = set()
        # Highest value at the last compaction sweep; sweeps are
        # amortized (one O(|missing|) pass per `horizon` advance), so
        # the set holds at most ~2·horizon sequence slots' worth of gaps.
        self._swept_at: Optional[int] = None

    @property
    def highest_seq(self) -> Optional[int]:
        return self._highest

    @property
    def received_count(self) -> int:
        return self._received_count

    @property
    def missing_count(self) -> int:
        """Total heartbeats currently counted as missing (incl. compacted)."""
        return len(self._missing) + self._lost_compacted

    @property
    def reorder_horizon(self) -> Optional[int]:
        return self._horizon

    @property
    def compacted_count(self) -> int:
        """Missing numbers already folded into the integer lost-count."""
        return self._lost_compacted

    @property
    def pending_missing(self) -> int:
        """Missing numbers still held individually (reorder-recoverable)."""
        return len(self._missing)

    @property
    def n_observed(self) -> int:
        """Number of sequence slots accounted for (highest − first + 1)."""
        if self._highest is None:
            return 0
        return self._highest - self._first_seq + 1

    def observe(self, seq: int) -> None:
        """Record the receipt of heartbeat ``seq``."""
        if seq < self._first_seq:
            raise EstimationError(
                f"sequence number {seq} below first_seq {self._first_seq}"
            )
        if self._highest is None:
            self._add_missing_range(self._first_seq, seq)
            self._highest = seq
            self._swept_at = seq
        elif seq > self._highest:
            self._add_missing_range(self._highest + 1, seq)
            self._highest = seq
            self._maybe_compact()
        elif seq in self._missing:
            self._missing.discard(seq)  # late arrival, not a loss
        else:
            return  # duplicate (footnote 8) or beyond-horizon straggler
        self._received_count += 1

    def note_local_drop(self, seq: int) -> None:
        """Record that heartbeat ``seq`` reached the monitor but was shed
        *locally* (bounded-inbox overflow mid-burst, shutdown race)
        before it could be observed.

        The message traversed the network, so it must not be charged to
        ``p_L``: when the surrounding sequence gap opens, ``seq`` is
        excluded from the missing-range accounting instead of sitting in
        the reorder window as a phantom loss — overload at q would
        otherwise poison the loss estimate (and through it every
        configurator decision).  Drops below an already-opened gap are
        un-counted from the pending missing set directly.  Bounded: at
        most ~one reorder horizon of shed numbers is retained.
        """
        if seq < self._first_seq:
            return
        if self._highest is not None and seq <= self._highest:
            # The gap already opened; rescue it from the missing set if
            # still within the reorder window (compacted numbers stay
            # lost — same boundedness contract as reordering).
            self._missing.discard(seq)
            return
        self._local_drops.add(seq)
        limit = (self._horizon or 1024) * 2
        if len(self._local_drops) > limit:
            # Flood guard: forget the oldest announcements (they count
            # as lost — conservative, and bounded).
            for stale in sorted(self._local_drops)[: len(self._local_drops) - limit]:
                self._local_drops.discard(stale)

    def _add_missing_range(self, lo: int, hi: int) -> None:
        """Mark ``[lo, hi)`` missing, without materializing numbers that
        are already beyond the reorder horizon of ``hi - 1``'s window
        (a long partition or a late-joining monitor can open a gap far
        wider than the horizon in one step)."""
        shed = ()
        if self._local_drops:
            shed = {s for s in self._local_drops if lo <= s < hi}
            self._local_drops.difference_update(shed)
        if self._horizon is not None:
            cutoff = hi - self._horizon
            if cutoff > lo:
                compacted = cutoff - lo
                if shed:
                    compacted -= sum(1 for s in shed if s < cutoff)
                self._lost_compacted += compacted
                lo = cutoff
        if shed:
            self._missing.update(
                s for s in range(lo, hi) if s not in shed
            )
        else:
            self._missing.update(range(lo, hi))

    def _maybe_compact(self) -> None:
        if self._horizon is None:
            return
        assert self._highest is not None and self._swept_at is not None
        if self._highest - self._swept_at < self._horizon:
            return
        cutoff = self._highest - self._horizon
        stale = [s for s in self._missing if s < cutoff]
        if stale:
            self._missing.difference_update(stale)
            self._lost_compacted += len(stale)
        self._swept_at = self._highest

    def estimate(self) -> float:
        """Current estimate of ``p_L`` (0 before any observation)."""
        n = self.n_observed
        if n == 0:
            return 0.0
        return self.missing_count / n
