"""Message-loss probability estimation (Section 5.2).

"To estimate ``p_L``, one can use the sequence numbers of the heartbeat
messages to count the number of 'missing' heartbeats and then divide this
count by the highest sequence number received so far."

A heartbeat counts as missing once some *higher* sequence number has been
received — reordered (late but delivered) messages are *un*-counted when
they eventually arrive, so the estimate converges to the true ``p_L``
rather than to ``p_L`` plus the reordering rate.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.errors import EstimationError, InvalidParameterError

__all__ = ["LossRateEstimator"]


class LossRateEstimator:
    """Estimates ``p_L`` from observed heartbeat sequence numbers."""

    def __init__(self, first_seq: int = 1) -> None:
        if first_seq < 0:
            raise InvalidParameterError(f"first_seq must be >= 0, got {first_seq}")
        self._first_seq = int(first_seq)
        self._highest: Optional[int] = None
        self._received_count = 0
        # Sequence numbers below the highest that have not (yet) arrived.
        self._missing: Set[int] = set()

    @property
    def highest_seq(self) -> Optional[int]:
        return self._highest

    @property
    def received_count(self) -> int:
        return self._received_count

    @property
    def missing_count(self) -> int:
        return len(self._missing)

    @property
    def n_observed(self) -> int:
        """Number of sequence slots accounted for (highest − first + 1)."""
        if self._highest is None:
            return 0
        return self._highest - self._first_seq + 1

    def observe(self, seq: int) -> None:
        """Record the receipt of heartbeat ``seq``."""
        if seq < self._first_seq:
            raise EstimationError(
                f"sequence number {seq} below first_seq {self._first_seq}"
            )
        if self._highest is None:
            self._missing.update(range(self._first_seq, seq))
            self._highest = seq
        elif seq > self._highest:
            self._missing.update(range(self._highest + 1, seq))
            self._highest = seq
        elif seq in self._missing:
            self._missing.discard(seq)  # late arrival, not a loss
        else:
            return  # duplicate: ignore (footnote 8: first copy counts)
        self._received_count += 1

    def estimate(self) -> float:
        """Current estimate of ``p_L`` (0 before any observation)."""
        n = self.n_observed
        if n == 0:
            return 0.0
        return len(self._missing) / n
