"""One-stop heartbeat observer feeding all Section 5/6 estimators.

:class:`HeartbeatObserver` is what the adaptive machinery (Section 8.1,
Figs. 8 and 11) calls "the estimator": it consumes each received
heartbeat once and maintains

* the loss-rate estimate ``p_L``,
* windowed delay statistics (``E(D)+skew``, ``V(D)``),
* the expected-arrival-time estimate of eq. (6.3),

and snapshots them as a :class:`NetworkEstimate` for the configurator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.base import Heartbeat
from repro.core.nfd_e import ArrivalTimeEstimator
from repro.errors import EstimationError
from repro.estimation.delay_stats import WindowedDelayStats
from repro.estimation.loss import LossRateEstimator

__all__ = ["NetworkEstimate", "HeartbeatObserver"]


@dataclass(frozen=True)
class NetworkEstimate:
    """A snapshot of the estimated network behaviour.

    ``mean_delay`` includes the (constant) clock skew when clocks are
    unsynchronized; ``var_delay`` never does.  ``n_samples`` lets
    consumers decide whether the estimate is trustworthy yet.
    """

    loss_probability: float
    mean_delay: float
    var_delay: float
    n_samples: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"p_L≈{self.loss_probability:.4f}, E(D)+skew≈{self.mean_delay:.6g}, "
            f"V(D)≈{self.var_delay:.6g} (n={self.n_samples})"
        )


class HeartbeatObserver:
    """Feeds every received heartbeat to the loss/delay/EA estimators.

    Args:
        eta: nominal heartbeat inter-sending time (for the EA estimator).
        stats_window: number of recent delay samples for E(D)/V(D).
        arrival_window: number of recent heartbeats for the EA estimate
            (n in eq. 6.3; the paper's simulations use 32).
        first_seq: first heartbeat sequence number.
        loss_reorder_horizon: reorder horizon of the loss estimator (how
            far below the highest sequence number a late arrival can
            still be un-counted); bounds the estimator's memory for
            long-running monitors.  ``None`` keeps every missing number.
    """

    def __init__(
        self,
        eta: float,
        stats_window: int = 1000,
        arrival_window: int = 32,
        first_seq: int = 1,
        loss_reorder_horizon: int = 1024,
    ) -> None:
        self._loss = LossRateEstimator(
            first_seq=first_seq, reorder_horizon=loss_reorder_horizon
        )
        self._stats = WindowedDelayStats(window=stats_window)
        self._arrival = ArrivalTimeEstimator(eta=eta, window=arrival_window)

    @property
    def loss(self) -> LossRateEstimator:
        return self._loss

    @property
    def delay_stats(self) -> WindowedDelayStats:
        return self._stats

    @property
    def arrival(self) -> ArrivalTimeEstimator:
        return self._arrival

    def observe(self, heartbeat: Heartbeat) -> None:
        """Consume one received heartbeat."""
        self.observe_arrival(
            heartbeat.seq,
            heartbeat.send_local_time,
            heartbeat.receive_local_time,
        )

    def observe_arrival(
        self, seq: int, send_local_time: float, receive_local_time: float
    ) -> None:
        """Consume one received heartbeat given as plain fields.

        Identical float-op order to :meth:`observe`; the live monitor's
        batched drain calls this form so the hot path never constructs
        a :class:`Heartbeat` per message.
        """
        self._loss.observe(seq)
        self._stats.observe(receive_local_time - send_local_time)
        self._arrival.observe(seq, receive_local_time)

    def note_local_drop(self, seq: int) -> None:
        """Tell the loss estimator heartbeat ``seq`` was shed *by the
        monitor* (inbox overflow) after network receipt, so it is not
        charged to ``p_L`` (delay/EA estimators never saw it and need no
        correction — they are sample-based, not gap-based)."""
        self._loss.note_local_drop(seq)

    def expected_arrival(self, seq: int) -> float:
        """Estimated ``EA_seq`` (eq. 6.3) in the local clock."""
        return self._arrival.expected_arrival(seq)

    @property
    def ready(self) -> bool:
        """Whether enough samples exist for a variance estimate."""
        return self._stats.n_samples >= 2

    def snapshot(self) -> NetworkEstimate:
        """Snapshot the current estimates for the configurator."""
        if not self.ready:
            raise EstimationError(
                "need at least two delay samples before snapshotting"
            )
        return NetworkEstimate(
            loss_probability=self._loss.estimate(),
            mean_delay=self._stats.mean(),
            var_delay=self._stats.variance(),
            n_samples=self._stats.n_samples,
        )
