"""Streaming and windowed estimation of ``E(D)`` and ``V(D)``.

Section 5.2: p timestamps each heartbeat with its sending time ``S``; q
records the receipt time ``A``.  ``A − S`` is the one-way delay when
clocks are synchronized.  Section 6.2.2's observation: when clocks are
*not* synchronized but drift-free, ``A − S = delay + skew`` for a constant
skew, so

* the **variance** of ``A − S`` still estimates ``V(D)`` exactly;
* the **mean** of ``A − S`` estimates ``E(D) + skew`` — which is exactly
  the "expected arrival offset" NFD-E needs, and which Theorem 11's
  configurator never needs in the first place.

:class:`DelayStatsEstimator` is a numerically stable streaming (Welford)
estimator over the whole history; :class:`WindowedDelayStats` keeps only
the last ``window`` samples, which is what the adaptive detector of
Section 8.1 uses to track *current* network conditions.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque

from repro.errors import EstimationError, InvalidParameterError

__all__ = ["DelayStatsEstimator", "WindowedDelayStats"]


class DelayStatsEstimator:
    """Welford streaming mean/variance of delay samples ``A − S``."""

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    @property
    def n_samples(self) -> int:
        return self._n

    def observe(self, delay_sample: float) -> None:
        """Record one ``A − S`` sample (may include a constant skew)."""
        if not math.isfinite(delay_sample):
            raise EstimationError(
                f"delay sample must be finite, got {delay_sample}"
            )
        self._n += 1
        diff = delay_sample - self._mean
        self._mean += diff / self._n
        self._m2 += diff * (delay_sample - self._mean)

    def mean(self) -> float:
        """Estimated ``E(D)`` (plus clock skew if unsynchronized)."""
        if self._n == 0:
            raise EstimationError("no delay samples observed")
        return self._mean

    def variance(self, ddof: int = 1) -> float:
        """Estimated ``V(D)`` — skew-invariant even without synchrony."""
        if self._n <= ddof:
            raise EstimationError(
                f"need more than {ddof} samples, have {self._n}"
            )
        return self._m2 / (self._n - ddof)


class WindowedDelayStats:
    """Mean/variance of the last ``window`` delay samples.

    Running sums over a bounded deque give O(1) updates, but each
    eviction leaves a ~1 ulp residue in the sums: over millions of
    evictions (a week-long live monitor) the accumulated drift becomes
    visible in the variance, especially when the samples carry a large
    constant clock skew (Section 6.2.2's unsynchronized regime).  The
    sums are therefore recomputed exactly (``math.fsum``) from the deque
    once every ``window`` evictions — amortized O(1) per update — so the
    error is bounded by one window's worth of rounding regardless of how
    long the estimator runs.
    """

    def __init__(self, window: int) -> None:
        if window < 2:
            raise InvalidParameterError(f"window must be >= 2, got {window}")
        self._window = int(window)
        self._samples: Deque[float] = deque()
        self._sum = 0.0
        self._sum_sq = 0.0
        self._evictions_since_resync = 0

    @property
    def window(self) -> int:
        return self._window

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    @property
    def full(self) -> bool:
        return len(self._samples) == self._window

    def observe(self, delay_sample: float) -> None:
        if not math.isfinite(delay_sample):
            raise EstimationError(
                f"delay sample must be finite, got {delay_sample}"
            )
        self._samples.append(delay_sample)
        self._sum += delay_sample
        self._sum_sq += delay_sample * delay_sample
        if len(self._samples) > self._window:
            old = self._samples.popleft()
            self._sum -= old
            self._sum_sq -= old * old
            self._evictions_since_resync += 1
            if self._evictions_since_resync >= self._window:
                self._resync()

    def _resync(self) -> None:
        """Recompute the running sums exactly from the retained samples."""
        self._sum = math.fsum(self._samples)
        self._sum_sq = math.fsum(x * x for x in self._samples)
        self._evictions_since_resync = 0

    def mean(self) -> float:
        n = len(self._samples)
        if n == 0:
            raise EstimationError("no delay samples observed")
        return self._sum / n

    def variance(self, ddof: int = 1) -> float:
        n = len(self._samples)
        if n <= ddof:
            raise EstimationError(f"need more than {ddof} samples, have {n}")
        mean = self._sum / n
        # Guard tiny negative values from floating-point rounding.
        return max(self._sum_sq - n * mean * mean, 0.0) / (n - ddof)
