"""Online estimation of the network's probabilistic behaviour.

Section 5.2 / 6.2.2 of the paper: the configurators need ``p_L``, ``E(D)``
and ``V(D)`` (or just ``p_L`` and ``V(D)`` for NFD-U), all of which are
estimated from the heartbeat stream itself:

* ``p_L`` — count "missing" sequence numbers below the highest received
  (:class:`LossRateEstimator`);
* ``E(D)``, ``V(D)`` — statistics of (receive time − sender timestamp).
  With unsynchronized clocks that difference is delay **plus a constant
  skew**, so its *variance* still estimates ``V(D)`` exactly — the paper's
  key observation enabling Section 6 (:class:`DelayStatsEstimator`);
* expected arrival times — eq. (6.3), in
  :class:`repro.core.nfd_e.ArrivalTimeEstimator` (re-exported here);
* the Section 8.1.2 short-term/long-term combiner for bursty networks
  (:class:`ShortLongCombiner`).
"""

from repro.core.nfd_e import ArrivalTimeEstimator
from repro.estimation.combined import CombinedEstimate, ShortLongCombiner
from repro.estimation.delay_stats import DelayStatsEstimator, WindowedDelayStats
from repro.estimation.loss import LossRateEstimator
from repro.estimation.observer import HeartbeatObserver, NetworkEstimate

__all__ = [
    "LossRateEstimator",
    "DelayStatsEstimator",
    "WindowedDelayStats",
    "ArrivalTimeEstimator",
    "HeartbeatObserver",
    "NetworkEstimate",
    "ShortLongCombiner",
    "CombinedEstimate",
]
