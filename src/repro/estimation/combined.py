"""Short-term/long-term combined estimation for bursty networks.

Section 8.1.2: when network conditions change faster than a single
estimation window can track, the paper suggests running **two**
components — a short-term one that reacts quickly to bursts, and a
long-term one that is insensitive to momentary fluctuation — and
combining them *conservatively* (for failure detection, conservative
means assuming the larger delay mean, the larger variance and the larger
loss rate, since all three push toward later freshness points and fewer
false suspicions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import Heartbeat
from repro.errors import EstimationError, InvalidParameterError
from repro.estimation.delay_stats import WindowedDelayStats
from repro.estimation.loss import LossRateEstimator

__all__ = ["CombinedEstimate", "ShortLongCombiner"]


@dataclass(frozen=True)
class CombinedEstimate:
    """Conservative combination of short- and long-term estimates."""

    loss_probability: float
    mean_delay: float
    var_delay: float
    short_dominates: bool  # True when the short-term view was the binding one


class ShortLongCombiner:
    """Two estimation windows combined by taking the conservative value.

    Args:
        short_window: samples in the fast-reacting component (e.g. 10).
        long_window: samples in the stable component (e.g. 1000).
        first_seq: first heartbeat sequence number.
    """

    def __init__(
        self, short_window: int = 10, long_window: int = 1000, first_seq: int = 1
    ) -> None:
        if short_window >= long_window:
            raise InvalidParameterError(
                f"short_window ({short_window}) must be smaller than "
                f"long_window ({long_window})"
            )
        self._short = WindowedDelayStats(window=short_window)
        self._long = WindowedDelayStats(window=long_window)
        # Loss estimation needs a long horizon regardless; a 10-sample
        # window cannot resolve a 1% loss rate.
        self._loss = LossRateEstimator(first_seq=first_seq)

    @property
    def short(self) -> WindowedDelayStats:
        return self._short

    @property
    def long(self) -> WindowedDelayStats:
        return self._long

    def observe(self, heartbeat: Heartbeat) -> None:
        sample = heartbeat.receive_local_time - heartbeat.send_local_time
        self._short.observe(sample)
        self._long.observe(sample)
        self._loss.observe(heartbeat.seq)

    @property
    def ready(self) -> bool:
        return self._short.n_samples >= 2 and self._long.n_samples >= 2

    def snapshot(self) -> CombinedEstimate:
        """Conservative (max) combination of the two components."""
        if not self.ready:
            raise EstimationError("need at least two samples in each window")
        s_mean, l_mean = self._short.mean(), self._long.mean()
        s_var, l_var = self._short.variance(), self._long.variance()
        return CombinedEstimate(
            loss_probability=self._loss.estimate(),
            mean_delay=max(s_mean, l_mean),
            var_delay=max(s_var, l_var),
            short_dominates=(s_mean > l_mean or s_var > l_var),
        )
